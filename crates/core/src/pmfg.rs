//! Planar Maximally Filtered Graph (PMFG) construction (§II), as a
//! round-based parallel algorithm.
//!
//! The PMFG considers all pairwise similarities in decreasing order and
//! adds each edge iff the graph remains planar, stopping once the maximal
//! planar edge count `3n − 6` is reached. Every candidate costs a
//! left–right planarity test, which is what makes the PMFG orders of
//! magnitude slower than the TMFG — the runtime gap reproduced by the
//! Figure 1/3 experiments. Following the parallel PMFG of Yu & Shun
//! (ICDE 2023), [`pmfg`] attacks that cost with *speculative batches*:
//!
//! 1. **Parallel phase.** Each round takes the next prefix of the
//!    weight-sorted candidate list and tests every candidate against the
//!    committed graph concurrently, through the borrowed one-extra-edge
//!    view of [`pfg_graph::LrScratch`] (one warm scratch per pool worker,
//!    zero allocation and zero graph mutation per test).
//! 2. **Monotone rejection.** Planarity is monotone under edge addition:
//!    a subgraph of a planar graph is planar, so if `G + e` is non-planar
//!    then `G' + e` is non-planar for every supergraph `G' ⊇ G`. A
//!    candidate rejected against the round-start graph would therefore
//!    also be rejected by the sequential algorithm, whose test graph only
//!    ever grows — parallel rejections are **final** and need no retry.
//! 3. **Conflict-graph commit.** Survivors are committed in sorted order,
//!    but only survivors that *conflict* with an edge accepted earlier in
//!    the same round pay a commit-time re-test. The conflict structure is
//!    connected-component independence, tracked by an incremental
//!    union-find with round-stamped components (`RoundDsu`, private to
//!    this module):
//!
//!    A survivor `e = (u, v)` is **clean** when neither `u`'s nor `v`'s
//!    connected component (in the committed graph `G = G₀ + A`, where
//!    `G₀` is the round-start graph and `A` the edges accepted earlier
//!    this round) contains an endpoint of any edge of `A`. Then the
//!    components of `u` and `v` are *exactly* what they were in `G₀` —
//!    no `A`-edge touches them, and component membership only changes by
//!    touching — so the subgraph `G + e` adds `e` into is identical to
//!    the one `G₀ + e` adds it into. Planarity is decided per connected
//!    component (a graph is planar iff each component is), every other
//!    component of `G` is planar because `G` is (commits preserve
//!    planarity by construction), and the parallel phase proved
//!    `G₀ + e` planar — so `G + e` is planar and `e` commits **without a
//!    re-test**, matching the sequential decision exactly. A *dirty*
//!    survivor is re-validated against the committed graph (counted in
//!    [`Pmfg::commit_retests`]); that test is the exact test the
//!    sequential algorithm would run, so its accept *and* reject
//!    outcomes are final. Either way the result is **byte-identical** to
//!    [`pmfg_sequential`] at every thread count (the candidate schedule
//!    depends only on the input), which the differential tests pin down.
//!
//!    The shortcut has teeth because the PMFG spends most of its rounds
//!    on a *disconnected* graph: the heaviest `~n ln n / 2` edges arrive
//!    before random-weight components merge (Erdős–Rényi connectivity),
//!    which is most of the `3n − 6` acceptances — exactly the
//!    acceptance-heavy rounds where the old unconditional re-validation
//!    concentrated.
//!
//! The batch size adapts deterministically to the observed rejection rate:
//! early rounds are acceptance-heavy (small batches avoid useless stale
//! tests), late rounds are rejection-heavy (large batches turn almost all
//! tests into final parallel rejections). Candidates are sorted lazily —
//! construction usually stops long before the full `n(n−1)/2` pair list is
//! needed, so only top-weight chunks are ever sorted.

//!
//! Construction is generic over [`SimilaritySource`], and
//! [`pmfg_prescreened`] runs the same round loop over the sparse top-K
//! prescreen ([`TopKCandidates`]): the candidate stream starts from the
//! `O(nK)` prescreen pool instead of all `n(n−1)/2` pairs, and re-scans a
//! vertex's full row exactly when the emission frontier passes that
//! vertex's K-th key — the point where its pool view provably becomes
//! incomplete. The merged stream is *identical* to the dense sorted
//! stream, so the prescreened PMFG (graph and counters) is byte-identical
//! to the dense one; only [`Pmfg::prescreen_rescans`] records the exact
//! fallback work.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pfg_graph::{emission_cmp, LrScratch, SimilaritySource, TopKCandidates, WeightedGraph};
use pfg_primitives::par_sort_unstable_by;
use rayon::prelude::*;

use crate::error::CoreError;
use crate::schedule::BatchSchedule;

thread_local! {
    /// Per-thread planarity scratch for the speculative batch phase. Pool
    /// workers are persistent, so each worker warms one scratch and then
    /// reuses it for every test of every round of every construction that
    /// runs on that worker.
    static SPECULATIVE_SCRATCH: RefCell<LrScratch> = RefCell::new(LrScratch::new());
}

/// Configuration of the round-based parallel PMFG ([`pmfg_with_config`]).
///
/// The schedule is a function of the input only — never of the thread
/// count — so the construction (including its counters) is deterministic
/// across `RAYON_NUM_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmfgConfig {
    /// The speculative round sizes: `batch.initial` candidates in the
    /// first round (early rounds accept almost every candidate, and an
    /// acceptance can dirty later survivors of its round, so small early
    /// batches waste less work), doubling on rejection-heavy rounds up to
    /// `batch.cap` (once rejections dominate — the steady state — large
    /// batches turn almost all tests into final parallel rejections).
    pub batch: BatchSchedule,
}

impl Default for PmfgConfig {
    /// [`BatchSchedule::PMFG_ROUNDS`] — `initial = 32`, `cap = 128`,
    /// measured on the construction bench; see the schedule's docs for
    /// the sweep numbers.
    fn default() -> Self {
        Self {
            batch: BatchSchedule::PMFG_ROUNDS,
        }
    }
}

/// Result of PMFG construction.
#[derive(Debug, Clone)]
pub struct Pmfg {
    /// The filtered graph with similarity edge weights.
    pub graph: WeightedGraph,
    /// Number of candidate edges whose planarity was decided. The parallel
    /// builder speculatively tests whole batches, so this can exceed the
    /// sequential builder's count by up to one round's tail (candidates
    /// past the point where the graph became maximal).
    pub candidates_examined: usize,
    /// Total rejected candidates: speculative (parallel-phase) rejections
    /// plus commit-time rejections.
    pub rejections: usize,
    /// Rounds of the batched parallel loop (`0` for [`pmfg_sequential`]).
    pub rounds: usize,
    /// Rejections decided in a parallel phase, against the round-start
    /// graph. Final by monotonicity of planarity under edge addition.
    /// `parallel_rejections / rejections` measures how much of the
    /// rejection work — the bulk of PMFG's cost — left the critical path.
    pub parallel_rejections: usize,
    /// Commit-time planarity re-tests: survivors whose connected
    /// component was touched by an earlier acceptance of the same round
    /// (the conflict-graph commit's *dirty* case — see the module docs).
    /// Clean survivors commit with no test at all; before the conflict
    /// commit, *every* survivor after a round's first acceptance paid
    /// this test. `0` for [`pmfg_sequential`].
    pub commit_retests: usize,
    /// Full-row re-scans performed by the prescreened candidate stream
    /// ([`pmfg_prescreened`]) to keep its emission order exact. `0` for
    /// the dense builders.
    pub prescreen_rescans: usize,
}

impl Pmfg {
    /// Sum of the edge weights of the filtered graph.
    pub fn edge_weight_sum(&self) -> f64 {
        self.graph.total_edge_weight()
    }
}

/// Candidate edges in decreasing-weight order, sorted lazily in chunks.
///
/// PMFG construction stops after `3n − 6` acceptances, typically long
/// before the full `n(n−1)/2` pair list is consumed. Instead of sorting
/// everything up front (the previous behavior, `O(n² log n)` even for
/// inputs where construction examines a few percent of the pairs), the
/// stream partitions the next top-weight chunk with `select_nth_unstable`
/// (`O(remaining)`) and sorts only that chunk, doubling the chunk size on
/// each refill. The emitted order is identical to a full sort: the
/// comparator (weight descending, then vertex pair ascending) is a strict
/// total order, so the sorted prefix is unique.
struct CandidateStream<'a, S: SimilaritySource> {
    s: &'a S,
    pairs: Vec<(u32, u32)>,
    /// Next unconsumed position in `pairs`.
    pos: usize,
    /// `pairs[..sorted_end]` is fully sorted; beyond is an unsorted pool
    /// of strictly lighter candidates.
    sorted_end: usize,
    /// Size of the next chunk to carve out of the unsorted pool.
    chunk: usize,
}

/// The candidate order shared by every PMFG stream: [`emission_cmp`] with
/// the weights read from the similarity source.
#[inline]
fn candidate_cmp<S: SimilaritySource>(s: &S, a: (u32, u32), b: (u32, u32)) -> Ordering {
    emission_cmp(
        s.get(a.0 as usize, a.1 as usize),
        a,
        s.get(b.0 as usize, b.1 as usize),
        b,
    )
}

impl<'a, S: SimilaritySource> CandidateStream<'a, S> {
    fn new(s: &'a S) -> Self {
        let n = s.n();
        let mut pairs = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                pairs.push((i, j));
            }
        }
        // First chunk: a few multiples of the acceptance target (clamped
        // into the schedule's range), so typical constructions refill at
        // most a handful of times.
        let target = 3 * n.saturating_sub(2);
        Self {
            s,
            pairs,
            pos: 0,
            sorted_end: 0,
            chunk: BatchSchedule::CANDIDATE_CHUNK.clamp(4 * target),
        }
    }

    /// Sorts the next chunk of the unsorted pool into `pairs[..sorted_end]`.
    fn extend_sorted(&mut self) {
        let s = self.s;
        let remaining = self.pairs.len() - self.sorted_end;
        let take = self.chunk.min(remaining);
        let pool = &mut self.pairs[self.sorted_end..];
        if take < remaining {
            // Partition the top-weight `take` candidates to the front.
            pool.select_nth_unstable_by(take - 1, |&a, &b| candidate_cmp(s, a, b));
        }
        par_sort_unstable_by(&mut pool[..take], |&a, &b| candidate_cmp(s, a, b));
        self.sorted_end += take;
        self.chunk = BatchSchedule::CANDIDATE_CHUNK.grow(self.chunk);
    }
}

/// What the round loop needs from a candidate stream: the next `k`
/// candidates of the *dense* sorted order (however they are produced),
/// peek/consume style. Both implementations emit exactly the same
/// sequence; they differ only in how much of the matrix they touch.
trait CandidateSource {
    /// Returns the next (at most) `k` candidates in decreasing-weight
    /// order, without consuming them. Shorter only when the stream is
    /// nearly exhausted.
    fn peek(&mut self, k: usize) -> &[(u32, u32)];

    /// Consumes the first `k` previously peeked candidates.
    fn consume(&mut self, k: usize);

    /// Full-row re-scans the stream performed to stay exact.
    fn rescans(&self) -> usize {
        0
    }
}

impl<S: SimilaritySource> CandidateSource for CandidateStream<'_, S> {
    fn peek(&mut self, k: usize) -> &[(u32, u32)] {
        while self.sorted_end < self.pairs.len() && self.pos + k > self.sorted_end {
            self.extend_sorted();
        }
        &self.pairs[self.pos..(self.pos + k).min(self.sorted_end)]
    }

    fn consume(&mut self, k: usize) {
        self.pos += k;
        debug_assert!(self.pos <= self.sorted_end);
    }
}

/// A heap key ordered so that `BinaryHeap::pop` yields the pair that
/// [`emission_cmp`] emits first. The `vertex` payload (threshold heap
/// only) breaks ties when one pair is the K-th key of both endpoints.
#[derive(Debug, Clone, Copy)]
struct EmissionKey {
    w: f64,
    pair: (u32, u32),
    vertex: u32,
}

impl Ord for EmissionKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the emission-earliest key is the heap maximum.
        emission_cmp(other.w, other.pair, self.w, self.pair).then(other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for EmissionKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for EmissionKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for EmissionKey {}

/// The prescreened candidate stream: emits the **exact** dense candidate
/// order while reading only the top-K pool plus counted full-row
/// re-scans.
///
/// Invariant (established by [`TopKCandidates`]): a pair in *neither*
/// endpoint's list sorts strictly after the K-th key of **both**
/// endpoints. The stream therefore merges three sources:
///
/// * the sorted prescreen **pool** (every pair listed somewhere),
/// * an **extra** heap of pairs recovered by re-scans, and
/// * a **threshold** heap holding each overflowed vertex's K-th key.
///
/// Before emitting a candidate that sorts strictly after a pending
/// threshold, the stream *absorbs* that threshold's vertex: one full row
/// re-scan that pushes every missing pair `(v, u)` whose other endpoint
/// `u` is already absorbed into the extra heap — each missing pair is
/// recovered exactly once, at its later endpoint's absorption, and
/// provably before its emission position is reached. The merged sequence
/// is therefore identical to the dense sorted sequence, which is what
/// makes [`pmfg_prescreened`] byte-identical to [`pmfg`].
struct PrescreenedCandidates<'a, S: SimilaritySource> {
    s: &'a S,
    topk: &'a TopKCandidates,
    /// Materialized prefix of the merged (= dense) emission sequence.
    merged: Vec<(u32, u32)>,
    /// Next unconsumed position in `merged`.
    pos: usize,
    /// Prescreen pool pairs in emission order.
    pool: Vec<(u32, u32)>,
    pool_pos: usize,
    /// Pairs recovered by absorptions, keyed for earliest-first popping.
    extra: BinaryHeap<EmissionKey>,
    /// K-th keys of not-yet-absorbed vertices, earliest-first.
    thresholds: BinaryHeap<EmissionKey>,
    /// Whether each vertex has been absorbed (row re-scanned).
    absorbed: Vec<bool>,
    rescans: usize,
}

impl<'a, S: SimilaritySource> PrescreenedCandidates<'a, S> {
    fn new(s: &'a S, topk: &'a TopKCandidates) -> Self {
        let mut thresholds = BinaryHeap::with_capacity(topk.n());
        for v in 0..topk.n() {
            if let Some((w, i, j)) = topk.kth_key(v) {
                thresholds.push(EmissionKey {
                    w,
                    pair: (i, j),
                    vertex: v as u32,
                });
            }
        }
        Self {
            s,
            topk,
            merged: Vec::new(),
            pos: 0,
            pool: topk.pool_pairs(),
            pool_pos: 0,
            extra: BinaryHeap::new(),
            thresholds,
            absorbed: vec![false; topk.n()],
            rescans: 0,
        }
    }

    /// Materializes the next element of the merged sequence, absorbing
    /// due thresholds first. Returns `false` when the stream is done.
    fn advance(&mut self) -> bool {
        loop {
            // Earliest of pool head and extra head, in emission order.
            let pool_next = self.pool.get(self.pool_pos).map(|&(i, j)| EmissionKey {
                w: self.s.get(i as usize, j as usize),
                pair: (i, j),
                vertex: 0,
            });
            let extra_next = self.extra.peek().copied();
            let (candidate, from_pool) = match (pool_next, extra_next) {
                (None, None) => (None, false),
                (Some(p), None) => (Some(p), true),
                (None, Some(e)) => (Some(e), false),
                (Some(p), Some(e)) => {
                    if emission_cmp(p.w, p.pair, e.w, e.pair) == Ordering::Less {
                        (Some(p), true)
                    } else {
                        (Some(e), false)
                    }
                }
            };
            // A candidate strictly after a pending threshold may be out of
            // order: pairs missing at that threshold's vertex could belong
            // in between. Absorb the vertex (exact row re-scan) and retry.
            // With no candidate left, drain the thresholds the same way.
            let due = match (self.thresholds.peek(), &candidate) {
                (Some(t), Some(c)) => emission_cmp(t.w, t.pair, c.w, c.pair) == Ordering::Less,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if due {
                let t = self.thresholds.pop().expect("peeked above");
                self.absorb(t.vertex as usize);
                continue;
            }
            let Some(c) = candidate else {
                return false;
            };
            if from_pool {
                self.pool_pos += 1;
            } else {
                self.extra.pop();
            }
            self.merged.push(c.pair);
            return true;
        }
    }

    /// Re-scans row `v`, recovering every pair `(v, u)` that is in
    /// neither endpoint's list and whose other endpoint was already
    /// absorbed — the later-endpoint rule that adds each missing pair
    /// exactly once.
    fn absorb(&mut self, v: usize) {
        self.rescans += 1;
        for u in 0..self.s.n() {
            if u == v || !self.absorbed[u] {
                continue;
            }
            let w = self.s.get(v, u);
            if self.topk.in_pool(v, u, w) {
                continue;
            }
            let pair = if v < u {
                (v as u32, u as u32)
            } else {
                (u as u32, v as u32)
            };
            self.extra.push(EmissionKey { w, pair, vertex: 0 });
        }
        self.absorbed[v] = true;
    }
}

impl<S: SimilaritySource> CandidateSource for PrescreenedCandidates<'_, S> {
    fn peek(&mut self, k: usize) -> &[(u32, u32)] {
        while self.merged.len() - self.pos < k && self.advance() {}
        &self.merged[self.pos..(self.pos + k).min(self.merged.len())]
    }

    fn consume(&mut self, k: usize) {
        self.pos += k;
        debug_assert!(self.pos <= self.merged.len());
    }

    fn rescans(&self) -> usize {
        self.rescans
    }
}

/// Builds the PMFG of the similarity matrix `s` with the round-based
/// parallel algorithm and the default [`PmfgConfig`].
///
/// The constructed graph (edge set, weights, adjacency order) is identical
/// to [`pmfg_sequential`]'s at every thread count; see the module docs for
/// the monotone-rejection argument.
///
/// # Errors
/// Returns [`CoreError::TooFewVertices`] if `s` has fewer than 4 rows.
pub fn pmfg<S: SimilaritySource>(s: &S) -> Result<Pmfg, CoreError> {
    pmfg_with_config(s, PmfgConfig::default())
}

/// Builds the PMFG with an explicit batch schedule.
///
/// # Errors
/// Returns [`CoreError::TooFewVertices`] if `s` has fewer than 4 rows, and
/// [`CoreError::InvalidBatch`] if `config.initial_batch` is zero or
/// exceeds `config.max_batch`.
pub fn pmfg_with_config<S: SimilaritySource>(s: &S, config: PmfgConfig) -> Result<Pmfg, CoreError> {
    validate(s, config)?;
    pmfg_rounds(s, CandidateStream::new(s), config)
}

/// Builds the PMFG over the top-K prescreen: identical output and
/// counters to [`pmfg`] on the same source — the merged candidate stream
/// is provably the dense sorted order (see `PrescreenedCandidates`) —
/// but only `O(nK)` similarity reads up front, plus one full-row re-scan
/// per exhausted vertex, counted in [`Pmfg::prescreen_rescans`].
///
/// # Panics
/// Panics if `topk` was built for a different number of vertices.
///
/// # Errors
/// Returns [`CoreError::TooFewVertices`] if `s` has fewer than 4 rows, and
/// [`CoreError::InvalidBatch`] on a bad `config` batch schedule.
pub fn pmfg_prescreened<S: SimilaritySource>(
    s: &S,
    topk: &TopKCandidates,
    config: PmfgConfig,
) -> Result<Pmfg, CoreError> {
    assert_eq!(
        topk.n(),
        s.n(),
        "prescreen was built for a different matrix"
    );
    validate(s, config)?;
    pmfg_rounds(s, PrescreenedCandidates::new(s, topk), config)
}

fn validate<S: SimilaritySource>(s: &S, config: PmfgConfig) -> Result<(), CoreError> {
    let n = s.n();
    if n < 4 {
        return Err(CoreError::TooFewVertices { got: n });
    }
    config.batch.validate()
}

/// Incremental union-find over the committed graph's vertices, with
/// round-stamped components — the conflict structure of the commit phase.
///
/// Components only ever merge (edges are only added), so one structure
/// serves the whole construction. Each acceptance unions its endpoints
/// and stamps the merged component with the current round id; a survivor
/// is **clean** iff neither endpoint's component carries the current
/// round's stamp, i.e. no edge accepted earlier this round has an
/// endpoint in either component (see the module docs for why clean
/// survivors commit without a re-test). Stamps live on roots and every
/// union re-stamps the winning root, so staleness cannot survive a merge.
struct RoundDsu {
    /// Parent forest with path halving; roots point at themselves.
    parent: Vec<u32>,
    /// Component size, for union by size (valid at roots).
    size: Vec<u32>,
    /// Id of the last round that accepted an edge with an endpoint in
    /// this component (valid at roots; 0 = never, round ids start at 1).
    stamp: Vec<usize>,
}

impl RoundDsu {
    fn new(n: usize) -> Self {
        RoundDsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            stamp: vec![0; n],
        }
    }

    fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] as usize != v {
            // Path halving: point at the grandparent as we walk.
            let grandparent = self.parent[self.parent[v] as usize];
            self.parent[v] = grandparent;
            v = grandparent as usize;
        }
        v
    }

    /// `true` iff neither endpoint's component was touched by an
    /// acceptance stamped `round`.
    fn is_clean(&mut self, u: usize, v: usize, round: usize) -> bool {
        let ru = self.find(u);
        let rv = self.find(v);
        self.stamp[ru] != round && self.stamp[rv] != round
    }

    /// Records the acceptance of edge `(u, v)` in `round`: unions the
    /// components and stamps the merged root.
    fn accept(&mut self, u: usize, v: usize, round: usize) {
        let mut ru = self.find(u);
        let mut rv = self.find(v);
        if ru != rv {
            if self.size[ru] < self.size[rv] {
                std::mem::swap(&mut ru, &mut rv);
            }
            self.parent[rv] = ru as u32;
            self.size[ru] += self.size[rv];
        }
        self.stamp[ru] = round;
    }
}

/// The round loop, generic over how candidates are produced. Both streams
/// emit the same sequence, so everything downstream — graph, counters,
/// determinism across thread counts — is source-independent.
fn pmfg_rounds<S: SimilaritySource, C: CandidateSource>(
    s: &S,
    mut stream: C,
    config: PmfgConfig,
) -> Result<Pmfg, CoreError> {
    let n = s.n();
    let target_edges = 3 * n - 6;
    let mut graph = WeightedGraph::new(n);
    let mut commit_scratch = LrScratch::new();
    let mut dsu = RoundDsu::new(n);
    let mut batch_size = config.batch.initial;
    let mut candidates_examined = 0;
    let mut rejections = 0;
    let mut rounds = 0;
    let mut parallel_rejections = 0;
    let mut commit_retests = 0;
    while graph.num_edges() < target_edges {
        let batch = stream.peek(batch_size);
        if batch.is_empty() {
            break; // safety net: a full matrix always reaches 3n − 6 first
        }
        // Parallel phase: speculative tests against the committed graph.
        // `with_max_len(1)` makes every test its own stealable leaf, so
        // even the small early rounds spread across (and steal-balance
        // over) the pool.
        let verdicts: Vec<bool> = {
            let graph = &graph;
            batch
                .par_iter()
                .with_max_len(1)
                .map(|&(u, v)| {
                    SPECULATIVE_SCRATCH.with(|scratch| {
                        scratch
                            .borrow_mut()
                            .stays_planar_with_edge(graph, u as usize, v as usize)
                    })
                })
                .collect()
        };
        // Speculative rejections are final (monotonicity): count them all
        // before the commit loop so the counters don't depend on where the
        // graph happens to become maximal inside the batch.
        let round_rejections = verdicts.iter().filter(|&&ok| !ok).count();
        parallel_rejections += round_rejections;
        rejections += round_rejections;
        candidates_examined += batch.len();
        // Commit phase: survivors in sorted order through the conflict
        // structure — only a survivor whose component was touched by an
        // earlier acceptance of this round (dirty) is re-validated; clean
        // survivors commit with no test (module docs, point 3). Round ids
        // start at 1 so the zero-initialised stamps read as "never".
        let round_id = rounds + 1;
        for (k, &(u, v)) in batch.iter().enumerate() {
            if !verdicts[k] {
                continue;
            }
            if graph.num_edges() == target_edges {
                break;
            }
            let (u, v) = (u as usize, v as usize);
            let accepted = dsu.is_clean(u, v, round_id) || {
                // The sequential algorithm would have made this exact
                // test against this exact graph: accept and reject
                // outcomes are both final.
                commit_retests += 1;
                commit_scratch.stays_planar_with_edge(&graph, u, v)
            };
            if accepted {
                graph.add_edge(u, v, s.get(u, v));
                dsu.accept(u, v, round_id);
            } else {
                rejections += 1;
            }
        }
        let batch_len = batch.len();
        stream.consume(batch_len);
        rounds += 1;
        // Deterministic growth: once rejections dominate a round, double
        // the batch so the (perfectly parallel, final) rejection tests
        // amortize the round overhead.
        if 2 * round_rejections >= batch_len {
            batch_size = config.batch.grow(batch_size);
        }
    }
    Ok(Pmfg {
        graph,
        candidates_examined,
        rejections,
        rounds,
        parallel_rejections,
        commit_retests,
        prescreen_rescans: stream.rescans(),
    })
}

/// Builds the PMFG one candidate at a time — the paper's sequential
/// baseline, and the reference the parallel builder is differentially
/// tested against.
///
/// Each candidate is tested through the borrowed one-extra-edge view of a
/// single warm [`LrScratch`] (no graph clone, no add/test/remove
/// round-trip, no per-test allocation).
///
/// # Errors
/// Returns [`CoreError::TooFewVertices`] if `s` has fewer than 4 rows.
pub fn pmfg_sequential<S: SimilaritySource>(s: &S) -> Result<Pmfg, CoreError> {
    let n = s.n();
    if n < 4 {
        return Err(CoreError::TooFewVertices { got: n });
    }
    let target_edges = 3 * n - 6;
    let mut stream = CandidateStream::new(s);
    let mut scratch = LrScratch::new();
    let mut graph = WeightedGraph::new(n);
    let mut candidates_examined = 0;
    let mut rejections = 0;
    while graph.num_edges() < target_edges {
        let Some(&(u, v)) = stream.peek(1).first() else {
            break;
        };
        stream.consume(1);
        candidates_examined += 1;
        let (u, v) = (u as usize, v as usize);
        if scratch.stays_planar_with_edge(&graph, u, v) {
            graph.add_edge(u, v, s.get(u, v));
        } else {
            rejections += 1;
        }
    }
    Ok(Pmfg {
        graph,
        candidates_examined,
        rejections,
        rounds: 0,
        parallel_rejections: 0,
        commit_retests: 0,
        prescreen_rescans: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfg_graph::SymmetricMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_similarity(n: usize, seed: u64) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { rng.gen_range(0.0..1.0) })
    }

    /// A block-structured similarity: high within `num_blocks` equal-sized
    /// clusters, low across, plus seeded jitter so all weights differ.
    fn clustered_similarity(n: usize, num_blocks: usize, seed: u64) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else {
                let base = if i % num_blocks == j % num_blocks {
                    0.8
                } else {
                    0.2
                };
                base + rng.gen_range(0.0..0.1)
            }
        })
    }

    fn edge_list(p: &Pmfg) -> Vec<(usize, usize, u64)> {
        p.graph
            .edges()
            .map(|(u, v, w)| (u, v, w.to_bits()))
            .collect()
    }

    #[test]
    fn rejects_tiny_inputs() {
        let s = SymmetricMatrix::filled(2, 1.0);
        assert!(matches!(pmfg(&s), Err(CoreError::TooFewVertices { .. })));
        assert!(matches!(
            pmfg_sequential(&s),
            Err(CoreError::TooFewVertices { .. })
        ));
    }

    #[test]
    fn rejects_invalid_batch_config() {
        let s = SymmetricMatrix::filled(8, 0.5);
        for batch in [
            BatchSchedule { initial: 0, cap: 8 },
            BatchSchedule {
                initial: 64,
                cap: 8,
            },
        ] {
            assert!(matches!(
                pmfg_with_config(&s, PmfgConfig { batch }),
                Err(CoreError::InvalidBatch)
            ));
        }
    }

    #[test]
    fn pmfg_is_maximal_planar() {
        for n in [5, 10, 20] {
            let s = random_similarity(n, n as u64);
            let p = pmfg(&s).unwrap();
            assert_eq!(p.graph.num_edges(), 3 * n - 6);
            assert!(pfg_graph::is_planar(&p.graph));
            assert!(p.graph.is_connected());
        }
    }

    #[test]
    fn pmfg_of_five_vertices_drops_exactly_one_edge() {
        // K5 has 10 edges; a maximal planar graph on 5 vertices has 9. The
        // construction either rejects exactly one edge or stops early having
        // accepted the 9 heaviest, in which case the lightest edge is the
        // implicitly dropped one.
        let s = random_similarity(5, 3);
        let p = pmfg(&s).unwrap();
        assert_eq!(p.graph.num_edges(), 9);
        assert!(p.rejections <= 1);
        assert!(p.candidates_examined >= 9 && p.candidates_examined <= 10);
    }

    #[test]
    fn pmfg_keeps_heaviest_edges_greedily() {
        // With uniform weights plus one dominant edge, that edge must be kept.
        let n = 8;
        let mut s = SymmetricMatrix::filled(n, 0.1);
        for i in 0..n {
            s.set(i, i, 1.0);
        }
        s.set(2, 6, 0.99);
        let p = pmfg(&s).unwrap();
        assert!(p.graph.has_edge(2, 6));
    }

    #[test]
    fn pmfg_weight_at_least_tmfg_weight_typically() {
        // PMFG optimizes edge-by-edge and usually retains at least as much
        // total weight as the TMFG (Figure 7 shows ratios close to 1).
        let s = random_similarity(24, 11);
        let p = pmfg(&s).unwrap();
        let t = crate::tmfg::tmfg_sequential(&s).unwrap();
        assert!(p.edge_weight_sum() > 0.9 * t.edge_weight_sum());
    }

    #[test]
    fn edge_weights_match_similarity() {
        let s = random_similarity(12, 5);
        let p = pmfg(&s).unwrap();
        for (u, v, w) in p.graph.edges() {
            assert!((w - s.get(u, v)).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_sequential_at_every_thread_count() {
        // The differential guarantee of the round-based algorithm: the
        // parallel builder's graph is byte-identical to the sequential
        // one's (edges, weights, adjacency order), and its counters are
        // identical across worker counts, for random and clustered inputs.
        for (name, s) in [
            ("random", random_similarity(60, 7)),
            ("clustered", clustered_similarity(48, 4, 21)),
        ] {
            let seq = pmfg_sequential(&s).unwrap();
            let baseline = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap()
                .install(|| pmfg(&s).unwrap());
            assert_eq!(
                edge_list(&seq),
                edge_list(&baseline),
                "{name}: parallel edge set must equal sequential"
            );
            for threads in [2, 8] {
                let par = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap()
                    .install(|| pmfg(&s).unwrap());
                let ctx = format!("{name}, {threads} threads");
                assert_eq!(edge_list(&baseline), edge_list(&par), "{ctx}: edges");
                assert_eq!(baseline.rounds, par.rounds, "{ctx}: rounds");
                assert_eq!(
                    baseline.candidates_examined, par.candidates_examined,
                    "{ctx}: examined"
                );
                assert_eq!(baseline.rejections, par.rejections, "{ctx}: rejections");
                assert_eq!(
                    baseline.parallel_rejections, par.parallel_rejections,
                    "{ctx}: parallel rejections"
                );
                assert_eq!(
                    baseline.commit_retests, par.commit_retests,
                    "{ctx}: commit re-tests"
                );
            }
        }
    }

    #[test]
    fn adversarial_same_round_conflicts_match_sequential() {
        // Worst case for the conflict-graph commit: one giant round whose
        // survivors all collide. Near-uniform weights on a K_n mean every
        // single-edge test against the round-start graph passes, so the
        // whole pair list survives round 1 and the commit phase must
        // serially re-discover the planarity limit — maximal dirty-path
        // traffic, including genuine commit-time *rejections*.
        let n = 20;
        let mut rng = StdRng::seed_from_u64(97);
        let s = SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else {
                0.5 + rng.gen_range(0.0..1e-6)
            }
        });
        let config = PmfgConfig {
            batch: BatchSchedule {
                initial: 1024,
                cap: 1024,
            },
        };
        let seq = pmfg_sequential(&s).unwrap();
        let mut counters = Vec::new();
        for threads in [1, 2, 8] {
            let p = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| pmfg_with_config(&s, config).unwrap());
            assert_eq!(
                edge_list(&seq),
                edge_list(&p),
                "{threads} threads: edge set"
            );
            assert!(
                p.commit_retests > 0,
                "{threads} threads: conflicting survivors must re-test"
            );
            assert!(
                p.rejections > p.parallel_rejections,
                "{threads} threads: same-round conflicts must reject at commit time"
            );
            counters.push((
                p.rounds,
                p.rejections,
                p.parallel_rejections,
                p.commit_retests,
            ));
        }
        assert_eq!(counters[0], counters[1]);
        assert_eq!(counters[1], counters[2]);
    }

    #[test]
    fn conflict_commit_saves_retests_vs_unconditional_rule() {
        // The shortcut's bite. Replay the pre-conflict-commit rule —
        // every survivor after a round's first acceptance pays a
        // commit-time test — on the same schedule, and check the
        // conflict commit (a) builds the same graph and (b) performs
        // strictly fewer re-tests. (It can never perform more: a dirty
        // survivor implies an earlier acceptance this round, so every
        // new-rule re-test is an old-rule re-test.)
        let s = random_similarity(60, 7);
        let config = PmfgConfig::default();
        let p = pmfg_with_config(&s, config).unwrap();

        let n = s.n();
        let target = 3 * n - 6;
        let mut stream = CandidateStream::new(&s);
        let mut graph = WeightedGraph::new(n);
        let mut scratch = LrScratch::new();
        let mut batch_size = config.batch.initial;
        let mut old_retests = 0usize;
        while graph.num_edges() < target {
            let batch: Vec<(u32, u32)> = stream.peek(batch_size).to_vec();
            if batch.is_empty() {
                break;
            }
            // Round-start verdicts, as the parallel phase computes them.
            let verdicts: Vec<bool> = batch
                .iter()
                .map(|&(u, v)| scratch.stays_planar_with_edge(&graph, u as usize, v as usize))
                .collect();
            let round_rejections = verdicts.iter().filter(|&&ok| !ok).count();
            let mut accepts = 0usize;
            for (k, &(u, v)) in batch.iter().enumerate() {
                if !verdicts[k] {
                    continue;
                }
                if graph.num_edges() == target {
                    break;
                }
                let (u, v) = (u as usize, v as usize);
                let ok = accepts == 0 || {
                    old_retests += 1;
                    scratch.stays_planar_with_edge(&graph, u, v)
                };
                if ok {
                    graph.add_edge(u, v, s.get(u, v));
                    accepts += 1;
                }
            }
            stream.consume(batch.len());
            if 2 * round_rejections >= batch.len() {
                batch_size = config.batch.grow(batch_size);
            }
        }

        let replay_edges: Vec<(usize, usize, u64)> =
            graph.edges().map(|(u, v, w)| (u, v, w.to_bits())).collect();
        assert_eq!(
            edge_list(&p),
            replay_edges,
            "replay must build the same graph"
        );
        assert!(
            p.commit_retests < old_retests,
            "conflict commit saved nothing: {} re-tests vs old rule's {}",
            p.commit_retests,
            old_retests
        );
    }

    #[test]
    fn batch_schedule_does_not_change_the_graph() {
        // Any batch schedule produces the sequential edge set — rounds
        // only trade speculative work for commit re-validation.
        let s = random_similarity(40, 19);
        let reference = edge_list(&pmfg_sequential(&s).unwrap());
        for batch in [
            BatchSchedule { initial: 1, cap: 1 },
            BatchSchedule { initial: 3, cap: 7 },
            BatchSchedule {
                initial: 1024,
                cap: 4096,
            },
        ] {
            let p = pmfg_with_config(&s, PmfgConfig { batch }).unwrap();
            assert_eq!(edge_list(&p), reference, "{batch:?}");
        }
    }

    #[test]
    fn rejections_are_monotone_under_edge_addition() {
        // The argument that makes parallel rejections final: once G + e is
        // non-planar, growing G can never make e acceptable again. Grow a
        // PMFG prefix and re-test every previously rejected candidate at
        // every later stage.
        let s = random_similarity(16, 5);
        let p = pmfg_sequential(&s).unwrap();
        let mut graph = WeightedGraph::new(s.n());
        let mut rejected: Vec<(usize, usize)> = Vec::new();
        let mut scratch = LrScratch::new();
        let mut stream = CandidateStream::new(&s);
        while graph.num_edges() < 3 * s.n() - 6 {
            let Some(&(u, v)) = stream.peek(1).first() else {
                break;
            };
            stream.consume(1);
            let (u, v) = (u as usize, v as usize);
            if scratch.stays_planar_with_edge(&graph, u, v) {
                graph.add_edge(u, v, s.get(u, v));
                // Every earlier rejection must still be a rejection
                // against the grown graph.
                for &(ru, rv) in &rejected {
                    assert!(
                        !scratch.stays_planar_with_edge(&graph, ru, rv),
                        "rejected edge ({ru}, {rv}) became acceptable"
                    );
                }
            } else {
                rejected.push((u, v));
            }
        }
        assert_eq!(graph.num_edges(), p.graph.num_edges());
        assert!(!rejected.is_empty(), "test needs at least one rejection");
    }

    #[test]
    fn candidate_stream_matches_full_sort() {
        let s = random_similarity(24, 13);
        let n = s.n();
        let mut full: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        full.sort_by(|&a, &b| candidate_cmp(&s, a, b));
        let mut stream = CandidateStream::new(&s);
        let mut streamed = Vec::new();
        // Uneven peek sizes exercise refills mid-batch.
        for k in [1usize, 7, 64, 3, 1000].iter().cycle() {
            let batch = stream.peek(*k);
            if batch.is_empty() {
                break;
            }
            streamed.extend_from_slice(batch);
            let len = batch.len();
            stream.consume(len);
        }
        assert_eq!(streamed, full);
    }

    #[test]
    fn prescreened_stream_matches_full_sort() {
        // The merged (pool + recovered) sequence must equal the dense
        // sorted pair sequence for every K, including Ks small enough to
        // force many absorptions.
        let s = random_similarity(24, 13);
        let n = s.n();
        let mut full: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        full.sort_by(|&a, &b| candidate_cmp(&s, a, b));
        for k in [1usize, 2, 5, 16, 23] {
            let topk = TopKCandidates::build(&s, k);
            let mut stream = PrescreenedCandidates::new(&s, &topk);
            let mut streamed = Vec::new();
            // Uneven peek sizes exercise absorptions mid-batch.
            for take in [1usize, 7, 64, 3, 1000].iter().cycle() {
                let batch = stream.peek(*take);
                if batch.is_empty() {
                    break;
                }
                streamed.extend_from_slice(batch);
                let len = batch.len();
                stream.consume(len);
            }
            assert_eq!(streamed, full, "K = {k}");
            if k < n - 1 {
                assert!(stream.rescans() > 0, "K = {k} must exhaust some vertex");
            } else {
                assert_eq!(stream.rescans(), 0, "complete lists never re-scan");
            }
        }
    }

    #[test]
    fn prescreened_matches_dense() {
        // The tentpole guarantee: prescreened construction is
        // byte-identical to the dense path — graph, weights, and every
        // counter — with only `prescreen_rescans` recording the exact
        // fallback work.
        for (name, s) in [
            ("random", random_similarity(60, 7)),
            ("clustered", clustered_similarity(48, 4, 21)),
        ] {
            let dense = pmfg(&s).unwrap();
            // Small K: the construction must outrun the pool and trigger
            // exact re-scans. Large K: the pool covers everything.
            for k in [6usize, s.n() - 1] {
                let topk = TopKCandidates::build(&s, k);
                let p = pmfg_prescreened(&s, &topk, PmfgConfig::default()).unwrap();
                let ctx = format!("{name}, K = {k}");
                assert_eq!(edge_list(&dense), edge_list(&p), "{ctx}: edges");
                assert_eq!(dense.rounds, p.rounds, "{ctx}: rounds");
                assert_eq!(
                    dense.candidates_examined, p.candidates_examined,
                    "{ctx}: examined"
                );
                assert_eq!(dense.rejections, p.rejections, "{ctx}: rejections");
                assert_eq!(
                    dense.parallel_rejections, p.parallel_rejections,
                    "{ctx}: parallel rejections"
                );
                assert_eq!(
                    dense.commit_retests, p.commit_retests,
                    "{ctx}: commit re-tests"
                );
                if k == s.n() - 1 {
                    assert_eq!(p.prescreen_rescans, 0, "{ctx}: complete pool");
                }
            }
            assert_eq!(dense.prescreen_rescans, 0, "{name}: dense path");
        }
    }

    #[test]
    fn prescreened_runs_on_f32_storage() {
        // The f32 matrix is a different SimilaritySource with different
        // (rounded) weights; prescreened and dense must still agree with
        // each other on that source.
        let s = random_similarity(40, 29);
        let f32_data: Vec<f32> = s.as_slice().iter().map(|&x| x as f32).collect();
        let s32 = pfg_graph::SymmetricMatrixF32::from_symmetrized(s.n(), f32_data);
        let dense = pmfg(&s32).unwrap();
        let topk = TopKCandidates::build(&s32, 8);
        let p = pmfg_prescreened(&s32, &topk, PmfgConfig::default()).unwrap();
        assert_eq!(edge_list(&dense), edge_list(&p));
        assert_eq!(dense.graph.num_edges(), 3 * s.n() - 6);
    }

    #[test]
    fn counters_are_consistent() {
        let s = random_similarity(30, 2);
        let p = pmfg(&s).unwrap();
        let accepted = p.graph.num_edges();
        assert_eq!(accepted, 3 * s.n() - 6);
        assert!(p.parallel_rejections <= p.rejections);
        // Every examined candidate was accepted, rejected, or skipped as a
        // post-maximality survivor of the final round.
        assert!(p.candidates_examined >= accepted + p.rejections);
        assert!(p.rounds >= 1);
        // Only processed survivors re-test, and never a round's first.
        assert!(p.commit_retests <= accepted + (p.rejections - p.parallel_rejections));
        let seq = pmfg_sequential(&s).unwrap();
        assert_eq!(seq.rounds, 0);
        assert_eq!(seq.parallel_rejections, 0);
        assert_eq!(seq.commit_retests, 0);
        assert_eq!(
            seq.candidates_examined,
            seq.graph.num_edges() + seq.rejections
        );
        // Speculation can overshoot the maximality point, never undershoot.
        assert!(p.candidates_examined >= seq.candidates_examined);
    }
}
