//! Planar Maximally Filtered Graph (PMFG) construction (§II).
//!
//! The PMFG sorts all pairwise similarities in decreasing order and adds
//! each edge iff the graph remains planar, stopping once the maximal planar
//! edge count `3n − 6` is reached. Every tentative insertion runs the
//! left–right planarity test, which is what makes the PMFG orders of
//! magnitude slower than the TMFG — the runtime gap reproduced by the
//! Figure 1/3 experiments.

use pfg_graph::{planarity, SymmetricMatrix, WeightedGraph};
use pfg_primitives::par_sort_unstable_by;

use crate::error::CoreError;

/// Result of PMFG construction.
#[derive(Debug, Clone)]
pub struct Pmfg {
    /// The filtered graph with similarity edge weights.
    pub graph: WeightedGraph,
    /// Number of candidate edges examined (accepted + rejected) before the
    /// graph became maximal.
    pub candidates_examined: usize,
    /// Number of planarity tests that rejected an edge.
    pub rejections: usize,
}

impl Pmfg {
    /// Sum of the edge weights of the filtered graph.
    pub fn edge_weight_sum(&self) -> f64 {
        self.graph.total_edge_weight()
    }
}

/// Builds the PMFG of the similarity matrix `s`.
///
/// # Errors
/// Returns [`CoreError::TooFewVertices`] if `s` has fewer than 4 rows.
pub fn pmfg(s: &SymmetricMatrix) -> Result<Pmfg, CoreError> {
    let n = s.n();
    if n < 4 {
        return Err(CoreError::TooFewVertices { got: n });
    }
    // Sort all candidate edges by decreasing weight (parallel sort); ties
    // broken by the vertex pair so construction is deterministic.
    let mut candidates: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    par_sort_unstable_by(&mut candidates, |&(ai, aj), &(bi, bj)| {
        s.get(bi, bj)
            .total_cmp(&s.get(ai, aj))
            .then(ai.cmp(&bi))
            .then(aj.cmp(&bj))
    });

    let target_edges = 3 * n - 6;
    let mut graph = WeightedGraph::new(n);
    let mut candidates_examined = 0;
    let mut rejections = 0;
    for (u, v) in candidates {
        if graph.num_edges() == target_edges {
            break;
        }
        candidates_examined += 1;
        let w = s.get(u, v);
        graph.add_edge(u, v, w);
        if !planarity::is_planar(&graph) {
            // Roll back the tentative insertion.
            graph.remove_edge(u, v);
            rejections += 1;
        }
    }
    Ok(Pmfg {
        graph,
        candidates_examined,
        rejections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_similarity(n: usize, seed: u64) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { rng.gen_range(0.0..1.0) })
    }

    #[test]
    fn rejects_tiny_inputs() {
        let s = SymmetricMatrix::filled(2, 1.0);
        assert!(matches!(pmfg(&s), Err(CoreError::TooFewVertices { .. })));
    }

    #[test]
    fn pmfg_is_maximal_planar() {
        for n in [5, 10, 20] {
            let s = random_similarity(n, n as u64);
            let p = pmfg(&s).unwrap();
            assert_eq!(p.graph.num_edges(), 3 * n - 6);
            assert!(pfg_graph::is_planar(&p.graph));
            assert!(p.graph.is_connected());
        }
    }

    #[test]
    fn pmfg_of_five_vertices_drops_exactly_one_edge() {
        // K5 has 10 edges; a maximal planar graph on 5 vertices has 9. The
        // construction either rejects exactly one edge or stops early having
        // accepted the 9 heaviest, in which case the lightest edge is the
        // implicitly dropped one.
        let s = random_similarity(5, 3);
        let p = pmfg(&s).unwrap();
        assert_eq!(p.graph.num_edges(), 9);
        assert!(p.rejections <= 1);
        assert!(p.candidates_examined >= 9 && p.candidates_examined <= 10);
    }

    #[test]
    fn pmfg_keeps_heaviest_edges_greedily() {
        // With uniform weights plus one dominant edge, that edge must be kept.
        let n = 8;
        let mut s = SymmetricMatrix::filled(n, 0.1);
        for i in 0..n {
            s.set(i, i, 1.0);
        }
        s.set(2, 6, 0.99);
        let p = pmfg(&s).unwrap();
        assert!(p.graph.has_edge(2, 6));
    }

    #[test]
    fn pmfg_weight_at_least_tmfg_weight_typically() {
        // PMFG optimizes edge-by-edge and usually retains at least as much
        // total weight as the TMFG (Figure 7 shows ratios close to 1).
        let s = random_similarity(24, 11);
        let p = pmfg(&s).unwrap();
        let t = crate::tmfg::tmfg_sequential(&s).unwrap();
        assert!(p.edge_weight_sum() > 0.9 * t.edge_weight_sum());
    }

    #[test]
    fn edge_weights_match_similarity() {
        let s = random_similarity(12, 5);
        let p = pmfg(&s).unwrap();
        for (u, v, w) in p.graph.edges() {
            assert!((w - s.get(u, v)).abs() < 1e-12);
        }
    }
}
