//! Planar Maximally Filtered Graph (PMFG) construction (§II), as a
//! round-based parallel algorithm.
//!
//! The PMFG considers all pairwise similarities in decreasing order and
//! adds each edge iff the graph remains planar, stopping once the maximal
//! planar edge count `3n − 6` is reached. Every candidate costs a
//! left–right planarity test, which is what makes the PMFG orders of
//! magnitude slower than the TMFG — the runtime gap reproduced by the
//! Figure 1/3 experiments. Following the parallel PMFG of Yu & Shun
//! (ICDE 2023), [`pmfg`] attacks that cost with *speculative batches*:
//!
//! 1. **Parallel phase.** Each round takes the next prefix of the
//!    weight-sorted candidate list and tests every candidate against the
//!    committed graph concurrently, through the borrowed one-extra-edge
//!    view of [`pfg_graph::LrScratch`] (one warm scratch per pool worker,
//!    zero allocation and zero graph mutation per test).
//! 2. **Monotone rejection.** Planarity is monotone under edge addition:
//!    a subgraph of a planar graph is planar, so if `G + e` is non-planar
//!    then `G' + e` is non-planar for every supergraph `G' ⊇ G`. A
//!    candidate rejected against the round-start graph would therefore
//!    also be rejected by the sequential algorithm, whose test graph only
//!    ever grows — parallel rejections are **final** and need no retry.
//! 3. **Sequential commit.** Survivors are committed in sorted order.
//!    A survivor whose round has no earlier acceptance was tested against
//!    exactly the graph the sequential algorithm would use, so it commits
//!    for free; later survivors are cheaply re-validated against the
//!    committed graph plus the edges accepted earlier in the same round.
//!    A commit-time rejection is the *exact* sequential decision, so it
//!    too is final. The result is **byte-identical** to [`pmfg_sequential`]
//!    at every thread count (the candidate schedule depends only on the
//!    input), which the differential tests pin down.
//!
//! The batch size adapts deterministically to the observed rejection rate:
//! early rounds are acceptance-heavy (small batches avoid useless stale
//! tests), late rounds are rejection-heavy (large batches turn almost all
//! tests into final parallel rejections). Candidates are sorted lazily —
//! construction usually stops long before the full `n(n−1)/2` pair list is
//! needed, so only top-weight chunks are ever sorted.

use std::cell::RefCell;
use std::cmp::Ordering;

use pfg_graph::{LrScratch, SymmetricMatrix, WeightedGraph};
use pfg_primitives::par_sort_unstable_by;
use rayon::prelude::*;

use crate::error::CoreError;

thread_local! {
    /// Per-thread planarity scratch for the speculative batch phase. Pool
    /// workers are persistent, so each worker warms one scratch and then
    /// reuses it for every test of every round of every construction that
    /// runs on that worker.
    static SPECULATIVE_SCRATCH: RefCell<LrScratch> = RefCell::new(LrScratch::new());
}

/// Configuration of the round-based parallel PMFG ([`pmfg_with_config`]).
///
/// The schedule is a function of the input only — never of the thread
/// count — so the construction (including its counters) is deterministic
/// across `RAYON_NUM_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmfgConfig {
    /// Number of candidates speculatively tested in the first round.
    /// Early rounds accept almost every candidate, and every acceptance
    /// after the first in a round needs a sequential re-validation, so
    /// small early batches waste less work.
    pub initial_batch: usize,
    /// Upper bound for the adaptive batch growth. Once rejections dominate
    /// (the typical steady state), each rejection-heavy round doubles the
    /// batch up to this cap, turning nearly all tests into final parallel
    /// rejections.
    pub max_batch: usize,
}

impl Default for PmfgConfig {
    /// Defaults measured on the construction bench (ECG5000 correlation
    /// matrices, n ∈ {100, 250}): `initial_batch = 32`, `max_batch = 128`.
    /// Larger caps inflate the two costs that never parallelize — stale
    /// survivors that must be re-tested at commit time, and the
    /// speculative tail past the point where the graph became maximal —
    /// e.g. a 4096 cap spends 2333 commit-time re-tests at n = 250 where
    /// the 128 cap spends 238. Smaller caps only add (cheap) round
    /// barriers.
    fn default() -> Self {
        Self {
            initial_batch: 32,
            max_batch: 128,
        }
    }
}

/// Result of PMFG construction.
#[derive(Debug, Clone)]
pub struct Pmfg {
    /// The filtered graph with similarity edge weights.
    pub graph: WeightedGraph,
    /// Number of candidate edges whose planarity was decided. The parallel
    /// builder speculatively tests whole batches, so this can exceed the
    /// sequential builder's count by up to one round's tail (candidates
    /// past the point where the graph became maximal).
    pub candidates_examined: usize,
    /// Total rejected candidates: speculative (parallel-phase) rejections
    /// plus commit-time rejections.
    pub rejections: usize,
    /// Rounds of the batched parallel loop (`0` for [`pmfg_sequential`]).
    pub rounds: usize,
    /// Rejections decided in a parallel phase, against the round-start
    /// graph. Final by monotonicity of planarity under edge addition.
    /// `parallel_rejections / rejections` measures how much of the
    /// rejection work — the bulk of PMFG's cost — left the critical path.
    pub parallel_rejections: usize,
}

impl Pmfg {
    /// Sum of the edge weights of the filtered graph.
    pub fn edge_weight_sum(&self) -> f64 {
        self.graph.total_edge_weight()
    }
}

/// Candidate edges in decreasing-weight order, sorted lazily in chunks.
///
/// PMFG construction stops after `3n − 6` acceptances, typically long
/// before the full `n(n−1)/2` pair list is consumed. Instead of sorting
/// everything up front (the previous behavior, `O(n² log n)` even for
/// inputs where construction examines a few percent of the pairs), the
/// stream partitions the next top-weight chunk with `select_nth_unstable`
/// (`O(remaining)`) and sorts only that chunk, doubling the chunk size on
/// each refill. The emitted order is identical to a full sort: the
/// comparator (weight descending, then vertex pair ascending) is a strict
/// total order, so the sorted prefix is unique.
struct CandidateStream<'a> {
    s: &'a SymmetricMatrix,
    pairs: Vec<(u32, u32)>,
    /// Next unconsumed position in `pairs`.
    pos: usize,
    /// `pairs[..sorted_end]` is fully sorted; beyond is an unsorted pool
    /// of strictly lighter candidates.
    sorted_end: usize,
    /// Size of the next chunk to carve out of the unsorted pool.
    chunk: usize,
}

#[inline]
fn candidate_cmp(s: &SymmetricMatrix, a: (u32, u32), b: (u32, u32)) -> Ordering {
    let (ai, aj) = (a.0 as usize, a.1 as usize);
    let (bi, bj) = (b.0 as usize, b.1 as usize);
    s.get(bi, bj)
        .total_cmp(&s.get(ai, aj))
        .then(ai.cmp(&bi))
        .then(aj.cmp(&bj))
}

impl<'a> CandidateStream<'a> {
    fn new(s: &'a SymmetricMatrix) -> Self {
        let n = s.n();
        let mut pairs = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                pairs.push((i, j));
            }
        }
        // First chunk: a few multiples of the acceptance target, so typical
        // constructions refill at most a handful of times.
        let target = 3 * n.saturating_sub(2);
        Self {
            s,
            pairs,
            pos: 0,
            sorted_end: 0,
            chunk: (4 * target).max(1024),
        }
    }

    /// Returns the next (at most) `k` candidates in decreasing-weight
    /// order, without consuming them. Shorter only when the stream is
    /// nearly exhausted.
    fn peek(&mut self, k: usize) -> &[(u32, u32)] {
        while self.sorted_end < self.pairs.len() && self.pos + k > self.sorted_end {
            self.extend_sorted();
        }
        &self.pairs[self.pos..(self.pos + k).min(self.sorted_end)]
    }

    /// Consumes the first `k` previously peeked candidates.
    fn consume(&mut self, k: usize) {
        self.pos += k;
        debug_assert!(self.pos <= self.sorted_end);
    }

    /// Sorts the next chunk of the unsorted pool into `pairs[..sorted_end]`.
    fn extend_sorted(&mut self) {
        let s = self.s;
        let remaining = self.pairs.len() - self.sorted_end;
        let take = self.chunk.min(remaining);
        let pool = &mut self.pairs[self.sorted_end..];
        if take < remaining {
            // Partition the top-weight `take` candidates to the front.
            pool.select_nth_unstable_by(take - 1, |&a, &b| candidate_cmp(s, a, b));
        }
        par_sort_unstable_by(&mut pool[..take], |&a, &b| candidate_cmp(s, a, b));
        self.sorted_end += take;
        self.chunk *= 2;
    }
}

/// Builds the PMFG of the similarity matrix `s` with the round-based
/// parallel algorithm and the default [`PmfgConfig`].
///
/// The constructed graph (edge set, weights, adjacency order) is identical
/// to [`pmfg_sequential`]'s at every thread count; see the module docs for
/// the monotone-rejection argument.
///
/// # Errors
/// Returns [`CoreError::TooFewVertices`] if `s` has fewer than 4 rows.
pub fn pmfg(s: &SymmetricMatrix) -> Result<Pmfg, CoreError> {
    pmfg_with_config(s, PmfgConfig::default())
}

/// Builds the PMFG with an explicit batch schedule.
///
/// # Errors
/// Returns [`CoreError::TooFewVertices`] if `s` has fewer than 4 rows, and
/// [`CoreError::InvalidBatch`] if `config.initial_batch` is zero or
/// exceeds `config.max_batch`.
pub fn pmfg_with_config(s: &SymmetricMatrix, config: PmfgConfig) -> Result<Pmfg, CoreError> {
    let n = s.n();
    if n < 4 {
        return Err(CoreError::TooFewVertices { got: n });
    }
    if config.initial_batch == 0 || config.initial_batch > config.max_batch {
        return Err(CoreError::InvalidBatch);
    }
    let target_edges = 3 * n - 6;
    let mut stream = CandidateStream::new(s);
    let mut graph = WeightedGraph::new(n);
    let mut commit_scratch = LrScratch::new();
    let mut batch_size = config.initial_batch;
    let mut candidates_examined = 0;
    let mut rejections = 0;
    let mut rounds = 0;
    let mut parallel_rejections = 0;
    while graph.num_edges() < target_edges {
        let batch = stream.peek(batch_size);
        if batch.is_empty() {
            break; // safety net: a full matrix always reaches 3n − 6 first
        }
        // Parallel phase: speculative tests against the committed graph.
        // `with_max_len(1)` makes every test its own stealable leaf, so
        // even the small early rounds spread across (and steal-balance
        // over) the pool.
        let verdicts: Vec<bool> = {
            let graph = &graph;
            batch
                .par_iter()
                .with_max_len(1)
                .map(|&(u, v)| {
                    SPECULATIVE_SCRATCH.with(|scratch| {
                        scratch
                            .borrow_mut()
                            .stays_planar_with_edge(graph, u as usize, v as usize)
                    })
                })
                .collect()
        };
        // Speculative rejections are final (monotonicity): count them all
        // before the commit loop so the counters don't depend on where the
        // graph happens to become maximal inside the batch.
        let round_rejections = verdicts.iter().filter(|&&ok| !ok).count();
        parallel_rejections += round_rejections;
        rejections += round_rejections;
        candidates_examined += batch.len();
        // Commit phase: survivors in sorted order, re-validated only
        // against edges accepted earlier in this round.
        let mut accepts_this_round = 0usize;
        for (k, &(u, v)) in batch.iter().enumerate() {
            if !verdicts[k] {
                continue;
            }
            if graph.num_edges() == target_edges {
                break;
            }
            let (u, v) = (u as usize, v as usize);
            // With no earlier acceptance the committed graph is exactly
            // the graph the parallel verdict was computed against, so the
            // survivor commits without a second test.
            if accepts_this_round == 0 || commit_scratch.stays_planar_with_edge(&graph, u, v) {
                graph.add_edge(u, v, s.get(u, v));
                accepts_this_round += 1;
            } else {
                // The sequential algorithm would have made this exact
                // test against this exact graph: a final rejection.
                rejections += 1;
            }
        }
        let batch_len = batch.len();
        stream.consume(batch_len);
        rounds += 1;
        // Deterministic growth: once rejections dominate a round, double
        // the batch so the (perfectly parallel, final) rejection tests
        // amortize the round overhead.
        if 2 * round_rejections >= batch_len {
            batch_size = (batch_size * 2).min(config.max_batch);
        }
    }
    Ok(Pmfg {
        graph,
        candidates_examined,
        rejections,
        rounds,
        parallel_rejections,
    })
}

/// Builds the PMFG one candidate at a time — the paper's sequential
/// baseline, and the reference the parallel builder is differentially
/// tested against.
///
/// Each candidate is tested through the borrowed one-extra-edge view of a
/// single warm [`LrScratch`] (no graph clone, no add/test/remove
/// round-trip, no per-test allocation).
///
/// # Errors
/// Returns [`CoreError::TooFewVertices`] if `s` has fewer than 4 rows.
pub fn pmfg_sequential(s: &SymmetricMatrix) -> Result<Pmfg, CoreError> {
    let n = s.n();
    if n < 4 {
        return Err(CoreError::TooFewVertices { got: n });
    }
    let target_edges = 3 * n - 6;
    let mut stream = CandidateStream::new(s);
    let mut scratch = LrScratch::new();
    let mut graph = WeightedGraph::new(n);
    let mut candidates_examined = 0;
    let mut rejections = 0;
    while graph.num_edges() < target_edges {
        let Some(&(u, v)) = stream.peek(1).first() else {
            break;
        };
        stream.consume(1);
        candidates_examined += 1;
        let (u, v) = (u as usize, v as usize);
        if scratch.stays_planar_with_edge(&graph, u, v) {
            graph.add_edge(u, v, s.get(u, v));
        } else {
            rejections += 1;
        }
    }
    Ok(Pmfg {
        graph,
        candidates_examined,
        rejections,
        rounds: 0,
        parallel_rejections: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_similarity(n: usize, seed: u64) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { rng.gen_range(0.0..1.0) })
    }

    /// A block-structured similarity: high within `num_blocks` equal-sized
    /// clusters, low across, plus seeded jitter so all weights differ.
    fn clustered_similarity(n: usize, num_blocks: usize, seed: u64) -> SymmetricMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        SymmetricMatrix::from_fn(n, |i, j| {
            if i == j {
                1.0
            } else {
                let base = if i % num_blocks == j % num_blocks {
                    0.8
                } else {
                    0.2
                };
                base + rng.gen_range(0.0..0.1)
            }
        })
    }

    fn edge_list(p: &Pmfg) -> Vec<(usize, usize, u64)> {
        p.graph
            .edges()
            .map(|(u, v, w)| (u, v, w.to_bits()))
            .collect()
    }

    #[test]
    fn rejects_tiny_inputs() {
        let s = SymmetricMatrix::filled(2, 1.0);
        assert!(matches!(pmfg(&s), Err(CoreError::TooFewVertices { .. })));
        assert!(matches!(
            pmfg_sequential(&s),
            Err(CoreError::TooFewVertices { .. })
        ));
    }

    #[test]
    fn rejects_invalid_batch_config() {
        let s = SymmetricMatrix::filled(8, 0.5);
        for config in [
            PmfgConfig {
                initial_batch: 0,
                max_batch: 8,
            },
            PmfgConfig {
                initial_batch: 64,
                max_batch: 8,
            },
        ] {
            assert!(matches!(
                pmfg_with_config(&s, config),
                Err(CoreError::InvalidBatch)
            ));
        }
    }

    #[test]
    fn pmfg_is_maximal_planar() {
        for n in [5, 10, 20] {
            let s = random_similarity(n, n as u64);
            let p = pmfg(&s).unwrap();
            assert_eq!(p.graph.num_edges(), 3 * n - 6);
            assert!(pfg_graph::is_planar(&p.graph));
            assert!(p.graph.is_connected());
        }
    }

    #[test]
    fn pmfg_of_five_vertices_drops_exactly_one_edge() {
        // K5 has 10 edges; a maximal planar graph on 5 vertices has 9. The
        // construction either rejects exactly one edge or stops early having
        // accepted the 9 heaviest, in which case the lightest edge is the
        // implicitly dropped one.
        let s = random_similarity(5, 3);
        let p = pmfg(&s).unwrap();
        assert_eq!(p.graph.num_edges(), 9);
        assert!(p.rejections <= 1);
        assert!(p.candidates_examined >= 9 && p.candidates_examined <= 10);
    }

    #[test]
    fn pmfg_keeps_heaviest_edges_greedily() {
        // With uniform weights plus one dominant edge, that edge must be kept.
        let n = 8;
        let mut s = SymmetricMatrix::filled(n, 0.1);
        for i in 0..n {
            s.set(i, i, 1.0);
        }
        s.set(2, 6, 0.99);
        let p = pmfg(&s).unwrap();
        assert!(p.graph.has_edge(2, 6));
    }

    #[test]
    fn pmfg_weight_at_least_tmfg_weight_typically() {
        // PMFG optimizes edge-by-edge and usually retains at least as much
        // total weight as the TMFG (Figure 7 shows ratios close to 1).
        let s = random_similarity(24, 11);
        let p = pmfg(&s).unwrap();
        let t = crate::tmfg::tmfg_sequential(&s).unwrap();
        assert!(p.edge_weight_sum() > 0.9 * t.edge_weight_sum());
    }

    #[test]
    fn edge_weights_match_similarity() {
        let s = random_similarity(12, 5);
        let p = pmfg(&s).unwrap();
        for (u, v, w) in p.graph.edges() {
            assert!((w - s.get(u, v)).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_sequential_at_every_thread_count() {
        // The differential guarantee of the round-based algorithm: the
        // parallel builder's graph is byte-identical to the sequential
        // one's (edges, weights, adjacency order), and its counters are
        // identical across worker counts, for random and clustered inputs.
        for (name, s) in [
            ("random", random_similarity(60, 7)),
            ("clustered", clustered_similarity(48, 4, 21)),
        ] {
            let seq = pmfg_sequential(&s).unwrap();
            let baseline = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap()
                .install(|| pmfg(&s).unwrap());
            assert_eq!(
                edge_list(&seq),
                edge_list(&baseline),
                "{name}: parallel edge set must equal sequential"
            );
            for threads in [2, 8] {
                let par = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap()
                    .install(|| pmfg(&s).unwrap());
                let ctx = format!("{name}, {threads} threads");
                assert_eq!(edge_list(&baseline), edge_list(&par), "{ctx}: edges");
                assert_eq!(baseline.rounds, par.rounds, "{ctx}: rounds");
                assert_eq!(
                    baseline.candidates_examined, par.candidates_examined,
                    "{ctx}: examined"
                );
                assert_eq!(baseline.rejections, par.rejections, "{ctx}: rejections");
                assert_eq!(
                    baseline.parallel_rejections, par.parallel_rejections,
                    "{ctx}: parallel rejections"
                );
            }
        }
    }

    #[test]
    fn batch_schedule_does_not_change_the_graph() {
        // Any batch schedule produces the sequential edge set — rounds
        // only trade speculative work for commit re-validation.
        let s = random_similarity(40, 19);
        let reference = edge_list(&pmfg_sequential(&s).unwrap());
        for config in [
            PmfgConfig {
                initial_batch: 1,
                max_batch: 1,
            },
            PmfgConfig {
                initial_batch: 3,
                max_batch: 7,
            },
            PmfgConfig {
                initial_batch: 1024,
                max_batch: 4096,
            },
        ] {
            let p = pmfg_with_config(&s, config).unwrap();
            assert_eq!(edge_list(&p), reference, "{config:?}");
        }
    }

    #[test]
    fn rejections_are_monotone_under_edge_addition() {
        // The argument that makes parallel rejections final: once G + e is
        // non-planar, growing G can never make e acceptable again. Grow a
        // PMFG prefix and re-test every previously rejected candidate at
        // every later stage.
        let s = random_similarity(16, 5);
        let p = pmfg_sequential(&s).unwrap();
        let mut graph = WeightedGraph::new(s.n());
        let mut rejected: Vec<(usize, usize)> = Vec::new();
        let mut scratch = LrScratch::new();
        let mut stream = CandidateStream::new(&s);
        while graph.num_edges() < 3 * s.n() - 6 {
            let Some(&(u, v)) = stream.peek(1).first() else {
                break;
            };
            stream.consume(1);
            let (u, v) = (u as usize, v as usize);
            if scratch.stays_planar_with_edge(&graph, u, v) {
                graph.add_edge(u, v, s.get(u, v));
                // Every earlier rejection must still be a rejection
                // against the grown graph.
                for &(ru, rv) in &rejected {
                    assert!(
                        !scratch.stays_planar_with_edge(&graph, ru, rv),
                        "rejected edge ({ru}, {rv}) became acceptable"
                    );
                }
            } else {
                rejected.push((u, v));
            }
        }
        assert_eq!(graph.num_edges(), p.graph.num_edges());
        assert!(!rejected.is_empty(), "test needs at least one rejection");
    }

    #[test]
    fn candidate_stream_matches_full_sort() {
        let s = random_similarity(24, 13);
        let n = s.n();
        let mut full: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        full.sort_by(|&a, &b| candidate_cmp(&s, a, b));
        let mut stream = CandidateStream::new(&s);
        let mut streamed = Vec::new();
        // Uneven peek sizes exercise refills mid-batch.
        for k in [1usize, 7, 64, 3, 1000].iter().cycle() {
            let batch = stream.peek(*k);
            if batch.is_empty() {
                break;
            }
            streamed.extend_from_slice(batch);
            let len = batch.len();
            stream.consume(len);
        }
        assert_eq!(streamed, full);
    }

    #[test]
    fn counters_are_consistent() {
        let s = random_similarity(30, 2);
        let p = pmfg(&s).unwrap();
        let accepted = p.graph.num_edges();
        assert_eq!(accepted, 3 * s.n() - 6);
        assert!(p.parallel_rejections <= p.rejections);
        // Every examined candidate was accepted, rejected, or skipped as a
        // post-maximality survivor of the final round.
        assert!(p.candidates_examined >= accepted + p.rejections);
        assert!(p.rounds >= 1);
        let seq = pmfg_sequential(&s).unwrap();
        assert_eq!(seq.rounds, 0);
        assert_eq!(seq.parallel_rejections, 0);
        assert_eq!(
            seq.candidates_examined,
            seq.graph.num_edges() + seq.rejections
        );
        // Speculation can overshoot the maximality point, never undershoot.
        assert!(p.candidates_examined >= seq.candidates_examined);
    }
}
