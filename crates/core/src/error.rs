//! Error types for the filtered-graph construction and DBHT pipeline.

use std::fmt;

/// Errors produced by TMFG/PMFG construction and the DBHT pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The input matrix has fewer than four vertices; TMFG/PMFG start from a
    /// 4-clique and are undefined below that.
    TooFewVertices {
        /// Number of vertices supplied.
        got: usize,
    },
    /// The similarity and dissimilarity matrices have different sizes.
    DimensionMismatch {
        /// Size of the similarity matrix.
        similarity: usize,
        /// Size of the dissimilarity matrix.
        dissimilarity: usize,
    },
    /// The prefix size must be at least 1.
    InvalidPrefix,
    /// The PMFG batch schedule is invalid: the initial batch must be at
    /// least 1 and no larger than the maximum batch.
    InvalidBatch,
    /// The similarity matrix contains a NaN entry. NaN gains are never
    /// selected by the batch selector, so a vertex whose similarities are
    /// all NaN could never be inserted; the input is rejected up front
    /// instead.
    NanSimilarity {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TooFewVertices { got } => {
                write!(f, "filtered graphs require at least 4 vertices, got {got}")
            }
            CoreError::DimensionMismatch {
                similarity,
                dissimilarity,
            } => write!(
                f,
                "similarity matrix is {similarity}x{similarity} but dissimilarity matrix is {dissimilarity}x{dissimilarity}"
            ),
            CoreError::InvalidPrefix => write!(f, "prefix size must be at least 1"),
            CoreError::InvalidBatch => write!(
                f,
                "PMFG batch schedule is invalid: need 1 <= initial_batch <= max_batch"
            ),
            CoreError::NanSimilarity { row, col } => {
                write!(f, "similarity matrix entry ({row}, {col}) is NaN")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::TooFewVertices { got: 2 };
        assert!(e.to_string().contains("at least 4"));
        let e = CoreError::DimensionMismatch {
            similarity: 5,
            dissimilarity: 6,
        };
        assert!(e.to_string().contains("5x5"));
        assert!(CoreError::InvalidPrefix.to_string().contains("prefix"));
        assert!(CoreError::InvalidBatch.to_string().contains("batch"));
    }
}
