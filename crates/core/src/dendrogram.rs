//! Dendrograms: the hierarchical-clustering output of the DBHT and the
//! agglomerative baselines.
//!
//! A dendrogram over `n` objects has `n` leaves (ids `0..n`) and up to
//! `n − 1` binary internal nodes (ids `n..2n−1` in creation order). Each
//! internal node records the merge height; cutting the dendrogram so that
//! `k` clusters remain reproduces the evaluation protocol of §VII (cut such
//! that the number of clusters equals the number of ground-truth classes).

use pfg_graph::UnionFind;

/// A node of a [`Dendrogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DendroNode {
    /// Left child id (`None` for leaves).
    pub left: Option<usize>,
    /// Right child id (`None` for leaves).
    pub right: Option<usize>,
    /// Merge height; `0.0` for leaves.
    pub height: f64,
    /// Number of leaves in this subtree.
    pub size: usize,
    /// Parent node id, if already merged into one.
    pub parent: Option<usize>,
}

impl DendroNode {
    /// Returns `true` if this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left.is_none()
    }
}

/// A binary merge tree over `n` leaves.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    nodes: Vec<DendroNode>,
    num_leaves: usize,
}

impl Dendrogram {
    /// Creates a dendrogram with `n` leaves and no merges yet.
    pub fn new(num_leaves: usize) -> Self {
        let nodes = (0..num_leaves)
            .map(|_| DendroNode {
                left: None,
                right: None,
                height: 0.0,
                size: 1,
                parent: None,
            })
            .collect();
        Self { nodes, num_leaves }
    }

    /// Number of leaves.
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// Total number of nodes (leaves + internal).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the dendrogram has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node by id.
    #[inline]
    pub fn node(&self, id: usize) -> &DendroNode {
        &self.nodes[id]
    }

    /// Ids of all internal (merge) nodes, in creation order.
    pub fn internal_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        (self.num_leaves..self.nodes.len()).filter(move |&id| !self.nodes[id].is_leaf())
    }

    /// Merges the subtrees rooted at `a` and `b` at the given `height`,
    /// returning the id of the new internal node.
    ///
    /// # Panics
    /// Panics if either node already has a parent or if `a == b`.
    pub fn merge(&mut self, a: usize, b: usize, height: f64) -> usize {
        assert_ne!(a, b, "cannot merge a node with itself");
        assert!(self.nodes[a].parent.is_none(), "node {a} already merged");
        assert!(self.nodes[b].parent.is_none(), "node {b} already merged");
        let id = self.nodes.len();
        let size = self.nodes[a].size + self.nodes[b].size;
        self.nodes.push(DendroNode {
            left: Some(a),
            right: Some(b),
            height,
            size,
            parent: None,
        });
        self.nodes[a].parent = Some(id);
        self.nodes[b].parent = Some(id);
        id
    }

    /// Overrides the height of node `id` (used by the DBHT height
    /// re-assignment step, §V-D).
    pub fn set_height(&mut self, id: usize, height: f64) {
        self.nodes[id].height = height;
    }

    /// The root node id, i.e. the unique node without a parent, provided the
    /// dendrogram is fully merged. Returns `None` if more than one subtree
    /// remains (or the dendrogram is empty).
    pub fn root(&self) -> Option<usize> {
        let mut roots = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent.is_none());
        match (roots.next(), roots.next()) {
            (Some((id, _)), None) => Some(id),
            _ => None,
        }
    }

    /// Returns `true` if every internal node's height is at least as large
    /// as both of its children's heights (the standard dendrogram
    /// monotonicity requirement discussed in §V-D).
    pub fn is_monotone(&self) -> bool {
        self.internal_nodes().all(|id| {
            let node = &self.nodes[id];
            let hl = self.nodes[node.left.expect("internal node")].height;
            let hr = self.nodes[node.right.expect("internal node")].height;
            node.height + 1e-12 >= hl && node.height + 1e-12 >= hr
        })
    }

    /// Leaves contained in the subtree rooted at `id`.
    pub fn leaves_of(&self, id: usize) -> Vec<usize> {
        let mut leaves = Vec::new();
        let mut stack = vec![id];
        while let Some(x) = stack.pop() {
            let node = &self.nodes[x];
            if node.is_leaf() {
                leaves.push(x);
            } else {
                stack.push(node.left.expect("internal"));
                stack.push(node.right.expect("internal"));
            }
        }
        leaves.sort_unstable();
        leaves
    }

    /// Cuts the dendrogram so that exactly `k` clusters remain (or as many
    /// as possible if fewer than `k` leaves / merges exist), returning a
    /// cluster label in `0..k` for every leaf.
    ///
    /// The cut applies the `n − k` merges with the smallest heights (ties
    /// broken by creation order, so children are always applied before their
    /// parents when heights are equal), which for monotone dendrograms is
    /// equivalent to removing the `k − 1` highest merges.
    pub fn cut_to_clusters(&self, k: usize) -> Vec<usize> {
        let n = self.num_leaves;
        if n == 0 {
            return Vec::new();
        }
        let k = k.max(1);
        let mut internal: Vec<usize> = self.internal_nodes().collect();
        internal.sort_by(|&a, &b| {
            self.nodes[a]
                .height
                .total_cmp(&self.nodes[b].height)
                .then(a.cmp(&b))
        });
        let merges_to_apply = internal.len().saturating_sub(k.saturating_sub(1));
        let mut uf = UnionFind::new(self.nodes.len());
        for &id in internal.iter().take(merges_to_apply) {
            let node = &self.nodes[id];
            uf.union(id, node.left.expect("internal"));
            uf.union(id, node.right.expect("internal"));
        }
        // Any applied-parent chain links leaves transitively; unapplied
        // merges leave their children in separate clusters.
        leaf_labels(&mut uf, n)
    }

    /// Cuts the dendrogram at `height`: merges with height strictly greater
    /// than `height` are ignored. Returns a label per leaf.
    pub fn cut_at_height(&self, height: f64) -> Vec<usize> {
        let n = self.num_leaves;
        let mut uf = UnionFind::new(self.nodes.len());
        for id in self.internal_nodes() {
            let node = &self.nodes[id];
            if node.height <= height {
                uf.union(id, node.left.expect("internal"));
                uf.union(id, node.right.expect("internal"));
            }
        }
        leaf_labels(&mut uf, n)
    }

    /// Number of clusters produced by [`Dendrogram::cut_at_height`].
    pub fn num_clusters_at_height(&self, height: f64) -> usize {
        let labels = self.cut_at_height(height);
        let mut distinct: Vec<usize> = labels;
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len()
    }
}

/// Compact first-appearance labels for the `n` leaves of a dendrogram-node
/// union-find. Leaves occupy indices `0..n`, so truncating
/// [`UnionFind::labels`] (which visits elements in index order) to `n`
/// yields exactly the per-leaf labels.
fn leaf_labels(uf: &mut UnionFind, n: usize) -> Vec<usize> {
    let mut labels = uf.labels();
    labels.truncate(n);
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the dendrogram ((0,1)@1, (2,3)@2)@4 over 4 leaves.
    fn small_dendrogram() -> Dendrogram {
        let mut d = Dendrogram::new(4);
        let a = d.merge(0, 1, 1.0);
        let b = d.merge(2, 3, 2.0);
        d.merge(a, b, 4.0);
        d
    }

    #[test]
    fn merge_builds_binary_tree() {
        let d = small_dendrogram();
        assert_eq!(d.len(), 7);
        assert_eq!(d.root(), Some(6));
        assert_eq!(d.node(6).size, 4);
        assert!(d.is_monotone());
        assert_eq!(d.leaves_of(4), vec![0, 1]);
        assert_eq!(d.leaves_of(6), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cut_to_two_clusters() {
        let d = small_dendrogram();
        let labels = d.cut_to_clusters(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cut_to_one_and_many_clusters() {
        let d = small_dendrogram();
        let one = d.cut_to_clusters(1);
        assert!(one.iter().all(|&l| l == one[0]));
        let four = d.cut_to_clusters(4);
        let mut distinct = four.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4);
        // Asking for more clusters than leaves degrades gracefully.
        let many = d.cut_to_clusters(10);
        let mut distinct = many;
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn cut_at_height_thresholds() {
        let d = small_dendrogram();
        assert_eq!(d.num_clusters_at_height(0.5), 4);
        assert_eq!(d.num_clusters_at_height(1.5), 3);
        assert_eq!(d.num_clusters_at_height(2.5), 2);
        assert_eq!(d.num_clusters_at_height(5.0), 1);
    }

    #[test]
    fn root_is_none_until_fully_merged() {
        let mut d = Dendrogram::new(3);
        assert_eq!(d.root(), None);
        let a = d.merge(0, 1, 1.0);
        assert_eq!(d.root(), None);
        d.merge(a, 2, 2.0);
        assert_eq!(d.root(), Some(4));
    }

    #[test]
    fn set_height_can_break_and_restore_monotonicity() {
        let mut d = small_dendrogram();
        d.set_height(6, 0.5);
        assert!(!d.is_monotone());
        d.set_height(6, 10.0);
        assert!(d.is_monotone());
    }

    #[test]
    #[should_panic]
    fn double_merge_panics() {
        let mut d = Dendrogram::new(3);
        d.merge(0, 1, 1.0);
        d.merge(0, 2, 2.0);
    }

    #[test]
    fn empty_dendrogram() {
        let d = Dendrogram::new(0);
        assert!(d.is_empty());
        assert_eq!(d.cut_to_clusters(3), Vec::<usize>::new());
    }

    #[test]
    fn singleton_dendrogram() {
        let d = Dendrogram::new(1);
        assert_eq!(d.root(), Some(0));
        assert_eq!(d.cut_to_clusters(1), vec![0]);
    }
}
