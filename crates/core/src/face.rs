//! Triangular faces of the planar graphs under construction.

/// A triangular face `{a, b, c}` of the filtered graph, stored with its
/// corners sorted so that two triangles compare equal iff they contain the
/// same vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triangle {
    corners: [usize; 3],
}

impl Triangle {
    /// Creates the triangle `{a, b, c}`.
    ///
    /// # Panics
    /// Panics if the three vertices are not distinct.
    pub fn new(a: usize, b: usize, c: usize) -> Self {
        assert!(
            a != b && b != c && a != c,
            "triangle corners must be distinct"
        );
        let mut corners = [a, b, c];
        corners.sort_unstable();
        Self { corners }
    }

    /// The sorted corners of the triangle.
    #[inline]
    pub fn corners(&self) -> [usize; 3] {
        self.corners
    }

    /// Returns `true` if `v` is a corner of this triangle.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        self.corners.contains(&v)
    }

    /// Given a 4-clique `clique` that contains this triangle, returns the
    /// vertex of the clique that is *not* a corner (the "apex").
    ///
    /// # Panics
    /// Panics if the triangle is not a subset of the clique.
    pub fn apex_in(&self, clique: [usize; 4]) -> usize {
        assert!(
            self.corners.iter().all(|c| clique.contains(c)),
            "triangle {:?} is not a face of clique {:?}",
            self.corners,
            clique
        );
        for &v in &clique {
            if !self.contains(v) {
                return v;
            }
        }
        unreachable!("a 4-clique always has a vertex outside any of its triangles")
    }

    /// The three triangles obtained by replacing one corner with `v`
    /// (i.e. the new faces created when `v` is inserted into this face).
    pub fn split_with(&self, v: usize) -> [Triangle; 3] {
        let [a, b, c] = self.corners;
        [
            Triangle::new(v, a, b),
            Triangle::new(v, b, c),
            Triangle::new(v, a, c),
        ]
    }
}

impl std::fmt::Display for Triangle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{{{}, {}, {}}}",
            self.corners[0], self.corners[1], self.corners[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangles_are_order_independent() {
        assert_eq!(Triangle::new(3, 1, 2), Triangle::new(2, 3, 1));
        assert_eq!(Triangle::new(0, 5, 9).corners(), [0, 5, 9]);
    }

    #[test]
    #[should_panic]
    fn degenerate_triangle_panics() {
        Triangle::new(1, 1, 2);
    }

    #[test]
    fn contains_and_apex() {
        let t = Triangle::new(0, 1, 2);
        assert!(t.contains(1));
        assert!(!t.contains(3));
        assert_eq!(t.apex_in([0, 1, 2, 7]), 7);
    }

    #[test]
    #[should_panic]
    fn apex_panics_if_not_subset() {
        Triangle::new(0, 1, 9).apex_in([0, 1, 2, 3]);
    }

    #[test]
    fn split_produces_three_new_faces() {
        let t = Triangle::new(0, 1, 2);
        let faces = t.split_with(5);
        assert!(faces.contains(&Triangle::new(5, 0, 1)));
        assert!(faces.contains(&Triangle::new(5, 1, 2)));
        assert!(faces.contains(&Triangle::new(5, 0, 2)));
    }

    #[test]
    fn display_is_sorted() {
        assert_eq!(Triangle::new(2, 0, 1).to_string(), "{0, 1, 2}");
    }
}
