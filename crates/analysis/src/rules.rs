//! The determinism and concurrency-hygiene rules.
//!
//! Each rule is a lexical check over [`crate::scanner`] output, so string
//! and comment contents never trigger or suppress a finding. The rules
//! encode the workspace's standing contracts:
//!
//! * [`RULE_UNSAFE`] — every `unsafe` keyword (block, fn, or impl) carries
//!   a `SAFETY` justification: on the same line's comment or in the
//!   contiguous comment/attribute lines directly above (doc `# Safety`
//!   sections qualify).
//! * [`RULE_PARTIAL_CMP`] — no `.partial_cmp(` calls: on floats it returns
//!   `None` for NaN, and `unwrap_or`-style recovery silently breaks strict
//!   weak ordering (the repo's sorts require `total_cmp`). `PartialOrd`
//!   *implementations* (`fn partial_cmp`) are not calls and do not match.
//! * [`RULE_HASH_ITER`] — no iteration over `HashMap`/`HashSet` in
//!   non-test code: iteration order is randomized per process, so any
//!   result derived from it breaks the byte-identity contract. Detection
//!   is two-pass: bindings/fields/params whose declaration mentions
//!   `HashMap`/`HashSet` are tracked by name, and `for .. in` loops or
//!   order-sensitive method calls (`iter`, `keys`, `values`, `drain`,
//!   `into_iter`, `into_keys`, `into_values`, `intersection`, `union`,
//!   `difference`, `symmetric_difference`) on a tracked name are flagged.
//! * [`RULE_WALL_CLOCK`] — no `Instant::now` / `SystemTime` outside the
//!   allowlisted bench/timing modules; algorithm code must not read the
//!   clock.
//! * [`RULE_RAW_THREAD`] — no `thread::spawn` or `static mut` in non-test
//!   code outside the allowlisted executor shim: all parallelism goes
//!   through the pool so the chaos/racecheck harnesses see it.
//! * [`RULE_ATOMIC_ORDERING`] — no raw `std::sync::atomic` use (atomic
//!   types or the five memory-ordering variants) outside the allowlisted
//!   concurrency crates (the executor shim's platform abstraction, the
//!   audit registry, the model checker): an atomic the platform shim does
//!   not mediate is an atomic the model checker never explores. Keyed on
//!   the *memory* orderings (`SeqCst`, `Acquire`, `Release`, `AcqRel`,
//!   `Relaxed`) and atomic type names — never bare `Ordering::`, which
//!   would flag every `std::cmp::Ordering` comparator in the tree.
//! * [`RULE_RELAXED_FIELD`] — no `Relaxed` ordering on an access to a
//!   `top` / `bottom` / `buffer` field outside the protocol modules:
//!   those three words are the Chase–Lev deque's published state, and
//!   every relaxation of their orderings must live where the model
//!   checker and the ordering proof can see it.
//! * [`RULE_UNWRAP`] — no `.unwrap()` in the non-test hot paths
//!   (`crates/{core,graph,data}/src`): algorithm code propagates errors
//!   or documents the invariant with `expect`; a bare unwrap panics
//!   mid-parallel-stage with no context. This rule is path-scoped by
//!   *applicability* (the contract only covers the hot-path crates), not
//!   by suppression.

use crate::scanner::{scan, Line};

/// An `unsafe` keyword without a reachable `SAFETY` comment.
pub const RULE_UNSAFE: &str = "unsafe-needs-safety-comment";
/// A `.partial_cmp(` call site.
pub const RULE_PARTIAL_CMP: &str = "no-partial-cmp";
/// Iteration over a hash container in non-test code.
pub const RULE_HASH_ITER: &str = "no-hash-iteration";
/// A wall-clock read outside bench/timing modules.
pub const RULE_WALL_CLOCK: &str = "no-wall-clock";
/// A raw thread spawn or `static mut` outside the executor shim.
pub const RULE_RAW_THREAD: &str = "no-raw-thread";
/// Raw atomic use outside the platform shim / audit / model crates.
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
/// `Relaxed` on a `top`/`bottom`/`buffer` field access outside the
/// protocol modules.
pub const RULE_RELAXED_FIELD: &str = "relaxed-protocol-field";
/// `.unwrap()` in non-test hot-path code.
pub const RULE_UNWRAP: &str = "no-unwrap";

/// One finding: rule, repo-relative file, 1-based line, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Runs every rule over one file's source. `rel_path` is recorded in the
/// findings (and used for nothing else; path-based suppression is the
/// allowlist's job).
pub fn check_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let lines = scan(source);
    let mut out = Vec::new();
    check_unsafe(rel_path, &lines, &mut out);
    check_partial_cmp(rel_path, &lines, &mut out);
    check_hash_iteration(rel_path, &lines, &mut out);
    check_wall_clock(rel_path, &lines, &mut out);
    check_raw_thread(rel_path, &lines, &mut out);
    check_atomic_ordering(rel_path, &lines, &mut out);
    check_relaxed_field(rel_path, &lines, &mut out);
    check_unwrap(rel_path, &lines, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Word-boundary occurrence of `word` in `code` (identifier chars on
/// either side disqualify a match).
fn has_token(code: &str, word: &str) -> bool {
    find_token(code, word, 0).is_some()
}

fn find_token(code: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len();
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn comment_mentions_safety(line: &Line) -> bool {
    line.comment.to_uppercase().contains("SAFETY")
}

/// `unsafe fn(` with the paren directly after `fn` is function-*pointer*
/// type syntax (a field or parameter type), not an unsafe operation — a
/// declaration always names the function first (`unsafe fn name(`).
fn is_fn_pointer_type(code: &str, at: usize) -> bool {
    let rest = code[at + "unsafe".len()..].trim_start();
    rest.strip_prefix("fn")
        .is_some_and(|r| r.trim_start().starts_with('('))
}

fn check_unsafe(file: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        let mut needs_safety = false;
        let mut from = 0;
        while let Some(at) = find_token(&line.code, "unsafe", from) {
            if !is_fn_pointer_type(&line.code, at) {
                needs_safety = true;
                break;
            }
            from = at + "unsafe".len();
        }
        if !needs_safety {
            continue;
        }
        // Same-line comment, or the contiguous run of comment/attribute
        // lines directly above.
        let mut justified = comment_mentions_safety(line);
        let mut j = i;
        while !justified && j > 0 {
            j -= 1;
            let above = &lines[j];
            if above.is_comment_only() {
                justified = comment_mentions_safety(above);
            } else if above.is_attribute_only() {
                continue;
            } else {
                break;
            }
        }
        if !justified {
            out.push(Violation {
                rule: RULE_UNSAFE,
                file: file.to_string(),
                line: i + 1,
                message: "`unsafe` without a SAFETY comment on or above the line".to_string(),
            });
        }
    }
}

fn check_partial_cmp(file: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.code.contains(".partial_cmp(") {
            out.push(Violation {
                rule: RULE_PARTIAL_CMP,
                file: file.to_string(),
                line: i + 1,
                message: "`.partial_cmp(` call — use `total_cmp` (NaN breaks the strict weak \
                          order)"
                    .to_string(),
            });
        }
    }
}

/// Method suffixes whose results depend on hash iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
    ".intersection(",
    ".union(",
    ".difference(",
    ".symmetric_difference(",
];

fn check_hash_iteration(file: &str, lines: &[Line], out: &mut Vec<Violation>) {
    // Pass 1: names whose declaration mentions a hash container — `let`
    // bindings, struct fields, and typed params alike (`name: ...Hash...`
    // or `let name = Hash...`). Nested containers (`Vec<HashSet<..>>`)
    // are tracked too; indexing is handled at the use site.
    let mut tracked: Vec<String> = Vec::new();
    for line in lines {
        let code = &line.code;
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        // Imports and type aliases declare no iterable binding.
        let t = code.trim_start();
        if t.starts_with("use ") || t.starts_with("pub use ") || t.starts_with("type ") {
            continue;
        }
        if let Some(let_at) = find_token(code, "let", 0) {
            let rest = &code[let_at + 3..];
            let rest = rest
                .trim_start()
                .strip_prefix("mut ")
                .unwrap_or(rest.trim_start());
            if let Some(name) = leading_ident(rest) {
                tracked.push(name);
                continue;
            }
        }
        // Field or parameter form: `ident : ... Hash{Map,Set} ...` with the
        // container after the colon.
        if let Some(colon) = code.find(':') {
            let after = &code[colon..];
            if after.contains("HashMap") || after.contains("HashSet") {
                let before = code[..colon].trim_end();
                if let Some(name) = trailing_ident(before) {
                    tracked.push(name);
                }
            }
        }
    }
    tracked.sort();
    tracked.dedup();
    if tracked.is_empty() {
        return;
    }
    // Pass 2: iteration over a tracked name in non-test code.
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for name in &tracked {
            let mut from = 0;
            while let Some(at) = find_token(code, name, from) {
                from = at + name.len();
                let after = skip_index(&code[at + name.len()..]);
                let method_hit = HASH_ITER_METHODS.iter().any(|m| after.starts_with(m));
                let for_hit = is_for_in_target(&code[..at])
                    && (after.trim_start().starts_with('{') || after.trim_start().is_empty());
                if method_hit || for_hit {
                    out.push(Violation {
                        rule: RULE_HASH_ITER,
                        file: file.to_string(),
                        line: i + 1,
                        message: format!(
                            "iteration over hash container `{name}` — order is \
                             nondeterministic; iterate a sorted view instead"
                        ),
                    });
                    break;
                }
            }
        }
    }
}

/// Skips one balanced `[...]` index expression, returning what follows.
fn skip_index(s: &str) -> &str {
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'[') {
        return s;
    }
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return &s[k + 1..];
                }
            }
            _ => {}
        }
    }
    s
}

/// Whether the code before a name ends in `for .. in` (optionally with
/// `&` / `&mut`), i.e. the name is the loop's iterated expression.
fn is_for_in_target(before: &str) -> bool {
    let t = before.trim_end();
    let t = t.strip_suffix("&mut").unwrap_or(t).trim_end();
    let t = t.strip_suffix('&').unwrap_or(t).trim_end();
    t.ends_with(" in") && t.contains("for ")
}

fn leading_ident(s: &str) -> Option<String> {
    let s = s.trim_start();
    let end = s
        .char_indices()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
        .map_or(s.len(), |(k, _)| k);
    (end > 0 && !s.as_bytes()[0].is_ascii_digit()).then(|| s[..end].to_string())
}

fn trailing_ident(s: &str) -> Option<String> {
    let start = s
        .char_indices()
        .rev()
        .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
        .map_or(0, |(k, c)| k + c.len_utf8());
    let ident = &s[start..];
    (!ident.is_empty() && !ident.as_bytes()[0].is_ascii_digit()).then(|| ident.to_string())
}

fn check_wall_clock(file: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        let clock = if line.code.contains("Instant::now") {
            Some("Instant::now")
        } else if has_token(&line.code, "SystemTime") {
            Some("SystemTime")
        } else {
            None
        };
        if let Some(what) = clock {
            out.push(Violation {
                rule: RULE_WALL_CLOCK,
                file: file.to_string(),
                line: i + 1,
                message: format!("wall-clock read (`{what}`) outside bench/timing modules"),
            });
        }
    }
}

fn check_raw_thread(file: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let what = if line.code.contains("thread::spawn") {
            Some("thread::spawn")
        } else if has_token(&line.code, "static") && {
            let at = find_token(&line.code, "static", 0).unwrap();
            line.code[at + "static".len()..]
                .trim_start()
                .starts_with("mut ")
        } {
            Some("static mut")
        } else {
            None
        };
        if let Some(what) = what {
            out.push(Violation {
                rule: RULE_RAW_THREAD,
                file: file.to_string(),
                line: i + 1,
                message: format!(
                    "`{what}` outside the executor shim — parallelism must go through the pool"
                ),
            });
        }
    }
}

/// The atomic type names of `std::sync::atomic`. Matched as whole tokens,
/// so e.g. a local `AtomicUsizeLike` does not fire.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicPtr",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
];

/// The five *memory* orderings. Deliberately not `Less`/`Equal`/`Greater`
/// and never bare `Ordering::` — `std::cmp::Ordering` is everywhere in
/// comparator code and must not trip a concurrency rule.
const MEMORY_ORDERINGS: &[&str] = &["SeqCst", "AcqRel", "Acquire", "Release", "Relaxed"];

/// Whether the line uses the memory-ordering variant `v` as
/// `Ordering::<v>`. `Release` / `Acquire` / `Relaxed` are also plain
/// English (and identifiers elsewhere), so the `Ordering::` path directly
/// before the token is required to mean the enum variant.
fn uses_ordering(code: &str, v: &str) -> bool {
    let mut from = 0;
    while let Some(at) = find_token(code, v, from) {
        if code[..at].ends_with("Ordering::") {
            return true;
        }
        from = at + v.len();
    }
    false
}

/// First memory-ordering variant used on the line, if any.
fn memory_ordering_on(code: &str) -> Option<&'static str> {
    MEMORY_ORDERINGS
        .iter()
        .copied()
        .find(|v| uses_ordering(code, v))
}

fn check_atomic_ordering(file: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        let what = if code.contains("sync::atomic") {
            Some("std::sync::atomic".to_string())
        } else if let Some(ty) = ATOMIC_TYPES.iter().find(|t| has_token(code, t)) {
            Some((*ty).to_string())
        } else {
            memory_ordering_on(code).map(|v| format!("Ordering::{v}"))
        };
        if let Some(what) = what {
            out.push(Violation {
                rule: RULE_ATOMIC_ORDERING,
                file: file.to_string(),
                line: i + 1,
                message: format!(
                    "raw atomic use (`{what}`) outside the platform shim / audit / model \
                     crates — an atomic the shim does not mediate is one the model checker \
                     never explores"
                ),
            });
        }
    }
}

/// The Chase–Lev deque's published fields. A `Relaxed` near an access to
/// one of these outside the protocol modules is either a copy of protocol
/// code drifting out of the proof's sight, or a new protocol — both are
/// findings.
const PROTOCOL_FIELDS: &[&str] = &["top", "bottom", "buffer"];

fn check_relaxed_field(file: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        let code = &line.code;
        if !uses_ordering(code, "Relaxed") {
            continue;
        }
        let field = PROTOCOL_FIELDS.iter().find(|f| {
            let mut from = 0;
            while let Some(at) = find_token(code, f, from) {
                if code[..at].ends_with('.') {
                    return true;
                }
                from = at + f.len();
            }
            false
        });
        if let Some(field) = field {
            out.push(Violation {
                rule: RULE_RELAXED_FIELD,
                file: file.to_string(),
                line: i + 1,
                message: format!(
                    "`Relaxed` ordering on a `.{field}` access outside the protocol modules \
                     — the deque's published fields are model-checked only in \
                     crates/shims/rayon/src/protocol/"
                ),
            });
        }
    }
}

/// The crates whose `src` trees the no-unwrap contract covers: the
/// parallel algorithm hot paths. Applicability scoping, not suppression —
/// harness/test/bench code may unwrap freely.
const UNWRAP_SCOPED_PREFIXES: &[&str] =
    &["crates/core/src/", "crates/graph/src/", "crates/data/src/"];

fn check_unwrap(file: &str, lines: &[Line], out: &mut Vec<Violation>) {
    if !UNWRAP_SCOPED_PREFIXES.iter().any(|p| file.starts_with(p)) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.code.contains(".unwrap()") {
            out.push(Violation {
                rule: RULE_UNWRAP,
                file: file.to_string(),
                line: i + 1,
                message: "`.unwrap()` in hot-path code — propagate the error or document the \
                          invariant with `expect`"
                    .to_string(),
            });
        }
    }
}
