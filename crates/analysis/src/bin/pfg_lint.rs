//! Workspace determinism/concurrency linter.
//!
//! Usage: `pfg_lint [--root <dir>] [--allow <file>]`
//!
//! Defaults: `--root` is the current directory, `--allow` is
//! `<root>/lint.allow` (a missing allowlist file is treated as empty).
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use pfg_analysis::{lint_tree, Allowlist};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root requires a directory argument"),
            },
            "--allow" => match args.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return usage_error("--allow requires a file argument"),
            },
            "--help" | "-h" => {
                println!("usage: pfg_lint [--root <dir>] [--allow <file>]");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("pfg_lint: cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let allow_path = allow_path.unwrap_or_else(|| root.join("lint.allow"));

    let allow = match Allowlist::load(&allow_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pfg_lint: cannot read {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };

    match lint_tree(&root, &allow) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "pfg_lint: clean ({} suppression entries active)",
                allow.len()
            );
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("pfg_lint: {} finding(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("pfg_lint: I/O error under {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("pfg_lint: {msg}");
    eprintln!("usage: pfg_lint [--root <dir>] [--allow <file>]");
    ExitCode::from(2)
}
