//! The checked-in suppression file for [`crate::rules`] findings.
//!
//! Format (one entry per line, `#` comments):
//!
//! ```text
//! <rule-id> <path-prefix>
//! ```
//!
//! An entry suppresses findings of `rule-id` (or every rule, for `*`) in
//! files whose repo-relative path starts with `path-prefix` (forward
//! slashes on every platform). Suppressions are *rule-scoped* by design:
//! allowing wall-clock reads in the bench crate must not also allow, say,
//! hash iteration there. The workspace's file is `lint.allow` at the repo
//! root; every entry carries a comment saying why the exemption is sound.
//!
//! Parsing and matching live in the shared [`pfg_primitives::allow`]
//! module (the bench gate's `bench.allow` uses the same line discipline);
//! this wrapper keeps the linter's load semantics — a missing file is an
//! empty allowlist, not an error.

use std::path::Path;

use pfg_primitives::AllowFile;

/// Parsed allowlist: rule-scoped `(rule, path-prefix)` entries.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    file: AllowFile,
}

impl Allowlist {
    /// Parses the `lint.allow` format. Unknown rule names are kept (they
    /// suppress nothing but do not error, so the file can lead its
    /// linter).
    pub fn parse(text: &str) -> Self {
        Allowlist {
            file: AllowFile::parse_scoped(text),
        }
    }

    /// Loads and parses a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(e),
        }
    }

    /// Whether findings of `rule` in `rel_path` are suppressed.
    pub fn allows(&self, rule: &str, rel_path: &str) -> bool {
        self.file.allows(Some(rule), rel_path)
    }

    /// Number of entries (for reporting).
    pub fn len(&self) -> usize {
        self.file.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.file.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let a = Allowlist::parse(
            "# header\nno-wall-clock crates/bench/  # timing is the product\n\n* crates/x/\n",
        );
        assert_eq!(a.len(), 2);
        assert!(a.allows("no-wall-clock", "crates/bench/src/methods.rs"));
        assert!(!a.allows("no-wall-clock", "crates/core/src/lib.rs"));
        assert!(!a.allows("no-hash-iteration", "crates/bench/src/methods.rs"));
        assert!(a.allows("anything", "crates/x/y.rs"));
    }

    #[test]
    fn missing_file_is_empty() {
        let a = Allowlist::load(Path::new("/nonexistent/lint.allow")).unwrap();
        assert!(a.is_empty());
    }
}
