//! The checked-in suppression file for [`crate::rules`] findings.
//!
//! Format (one entry per line, `#` comments):
//!
//! ```text
//! <rule-id> <path-prefix>
//! ```
//!
//! An entry suppresses findings of `rule-id` (or every rule, for `*`) in
//! files whose repo-relative path starts with `path-prefix` (forward
//! slashes on every platform). Suppressions are *rule-scoped* by design:
//! allowing wall-clock reads in the bench crate must not also allow, say,
//! hash iteration there. The workspace's file is `lint.allow` at the repo
//! root; every entry carries a comment saying why the exemption is sound.

use std::path::Path;

/// Parsed allowlist: `(rule, path-prefix)` entries.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses the `lint.allow` format. Unknown rule names are kept (they
    /// suppress nothing but do not error, so the file can lead its
    /// linter).
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if let (Some(rule), Some(prefix)) = (parts.next(), parts.next()) {
                entries.push((rule.to_string(), prefix.to_string()));
            }
        }
        Allowlist { entries }
    }

    /// Loads and parses a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(e),
        }
    }

    /// Whether findings of `rule` in `rel_path` are suppressed.
    pub fn allows(&self, rule: &str, rel_path: &str) -> bool {
        self.entries
            .iter()
            .any(|(r, prefix)| (r == rule || r == "*") && rel_path.starts_with(prefix.as_str()))
    }

    /// Number of entries (for reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let a = Allowlist::parse(
            "# header\nno-wall-clock crates/bench/  # timing is the product\n\n* crates/x/\n",
        );
        assert_eq!(a.len(), 2);
        assert!(a.allows("no-wall-clock", "crates/bench/src/methods.rs"));
        assert!(!a.allows("no-wall-clock", "crates/core/src/lib.rs"));
        assert!(!a.allows("no-hash-iteration", "crates/bench/src/methods.rs"));
        assert!(a.allows("anything", "crates/x/y.rs"));
    }

    #[test]
    fn missing_file_is_empty() {
        let a = Allowlist::load(Path::new("/nonexistent/lint.allow")).unwrap();
        assert!(a.is_empty());
    }
}
