//! In-tree static analysis for the workspace's determinism and
//! concurrency contracts (the `pfg_lint` binary drives this library).
//!
//! The repo's standing guarantee — results byte-identical across
//! `RAYON_NUM_THREADS`, steal orders, and tile sizes — is stronger than
//! the paper's algorithmic equivalence, and most of the ways to lose it
//! are quiet: a `HashMap` iteration feeding an output, a `partial_cmp`
//! comparator meeting a NaN, an unannotated `unsafe` write whose
//! disjointness argument rotted. This crate enforces those contracts
//! lexically (no `syn`; the build is offline): [`scanner`] splits source
//! into code and comments with full string/raw-string/char-literal
//! awareness, [`rules`] runs the five checks over the code view, and
//! [`allowlist`] applies the checked-in, rule-scoped suppressions from
//! `lint.allow`.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p pfg_analysis --bin pfg_lint            # lint the workspace
//! cargo run -p pfg_analysis --bin pfg_lint -- --root <dir> --allow <file>
//! ```
//!
//! Exit code 0 means clean; 1 means findings (printed one per line as
//! `file:line: [rule] message`); 2 means an I/O error. The dynamic half
//! of the audit story — the `pfg_racecheck` shadow-write registry and the
//! executor's chaos mode — lives in `pfg_audit` and the rayon shim; this
//! crate is the static half.

pub mod allowlist;
pub mod rules;
pub mod scanner;

pub use allowlist::Allowlist;
pub use rules::{
    check_source, Violation, RULE_ATOMIC_ORDERING, RULE_HASH_ITER, RULE_PARTIAL_CMP,
    RULE_RAW_THREAD, RULE_RELAXED_FIELD, RULE_UNSAFE, RULE_UNWRAP, RULE_WALL_CLOCK,
};

use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS state, and the
/// linter's own known-bad fixtures (linted by unit tests, not by the
/// workspace sweep).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// All `.rs` files under `root`, sorted for deterministic report order.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every `.rs` file under `root`, applying `allow`. Findings come
/// back sorted by `(file, line, rule)`.
pub fn lint_tree(root: &Path, allow: &Allowlist) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for path in rust_files(root)? {
        let rel = rel_path(root, &path);
        let source = std::fs::read_to_string(&path)?;
        out.extend(
            check_source(&rel, &source)
                .into_iter()
                .filter(|v| !allow.allows(v.rule, &v.file)),
        );
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(out)
}

/// `path` relative to `root`, with forward slashes (allowlist entries and
/// reports use this form on every platform).
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_dir() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
    }

    fn lint_fixture(name: &str) -> Vec<Violation> {
        let path = fixture_dir().join(name);
        let source = std::fs::read_to_string(&path).expect("fixture exists");
        check_source(name, &source)
    }

    #[test]
    fn bad_unsafe_fixture_flags_exact_lines() {
        let v = lint_fixture("bad_unsafe.rs");
        let unsafe_hits: Vec<usize> = v
            .iter()
            .filter(|f| f.rule == RULE_UNSAFE)
            .map(|f| f.line)
            .collect();
        // Line 6: bare unsafe block. Line 14: unsafe impl with an
        // unrelated comment above. The annotated sites (SAFETY on the
        // line above, `# Safety` doc section, attribute between comment
        // and keyword) must NOT appear.
        assert_eq!(unsafe_hits, vec![6, 14]);
        assert!(v.iter().all(|f| f.file == "bad_unsafe.rs"));
    }

    #[test]
    fn bad_partial_cmp_fixture_flags_call_not_impl() {
        let v = lint_fixture("bad_partial_cmp.rs");
        let hits: Vec<usize> = v
            .iter()
            .filter(|f| f.rule == RULE_PARTIAL_CMP)
            .map(|f| f.line)
            .collect();
        // The `.partial_cmp(` call on line 11; the `fn partial_cmp`
        // definition and the string literal mentioning it must not match.
        assert_eq!(hits, vec![11]);
    }

    #[test]
    fn bad_hash_iter_fixture_flags_non_test_iteration_only() {
        let v = lint_fixture("bad_hash_iter.rs");
        let hits: Vec<usize> = v
            .iter()
            .filter(|f| f.rule == RULE_HASH_ITER)
            .map(|f| f.line)
            .collect();
        // Line 8: `for` over a HashMap binding. Line 20: `.keys()` on a
        // field. Line 29: `.intersection(` on an indexed Vec<HashSet>.
        // The lookup-only uses and the cfg(test) iteration must not match.
        assert_eq!(hits, vec![8, 20, 29]);
    }

    #[test]
    fn bad_wall_clock_fixture() {
        let v = lint_fixture("bad_wall_clock.rs");
        let hits: Vec<usize> = v
            .iter()
            .filter(|f| f.rule == RULE_WALL_CLOCK)
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![4, 9]);
    }

    #[test]
    fn bad_thread_fixture_skips_test_code() {
        let v = lint_fixture("bad_thread.rs");
        let hits: Vec<usize> = v
            .iter()
            .filter(|f| f.rule == RULE_RAW_THREAD)
            .map(|f| f.line)
            .collect();
        // Line 4: static mut. Line 8: thread::spawn. The cfg(test) spawn
        // must not match.
        assert_eq!(hits, vec![4, 8]);
    }

    #[test]
    fn bad_atomic_ordering_fixture_flags_raw_atomics_not_cmp() {
        let v = lint_fixture("bad_atomic_ordering.rs");
        let atomic_hits: Vec<usize> = v
            .iter()
            .filter(|f| f.rule == RULE_ATOMIC_ORDERING)
            .map(|f| f.line)
            .collect();
        // Line 5: the std::sync::atomic import. Line 8: an AtomicUsize
        // field. Line 11: an AtomicUsize parameter. Lines 12/15: memory
        // orderings at use sites. The std::cmp::Ordering comparator and
        // the string-literal mentions must NOT match.
        assert_eq!(atomic_hits, vec![5, 8, 11, 12, 15]);
        let relaxed_hits: Vec<usize> = v
            .iter()
            .filter(|f| f.rule == RULE_RELAXED_FIELD)
            .map(|f| f.line)
            .collect();
        // Only the `.top` store with `Ordering::Relaxed` — the SeqCst
        // store on line 12 touches no protocol field.
        assert_eq!(relaxed_hits, vec![15]);
    }

    #[test]
    fn bad_unwrap_fixture_is_scoped_to_hot_path_crates() {
        let path = fixture_dir().join("bad_unwrap.rs");
        let source = std::fs::read_to_string(&path).expect("fixture exists");
        // Under a hot-path pseudo-path: the bare unwrap on line 6 fires;
        // `expect`, `unwrap_or`, and the cfg(test) unwrap do not.
        let hits: Vec<usize> = check_source("crates/core/src/bad_unwrap.rs", &source)
            .iter()
            .filter(|f| f.rule == RULE_UNWRAP)
            .map(|f| f.line)
            .collect();
        assert_eq!(hits, vec![6]);
        // Outside the scoped prefixes the rule does not apply at all.
        assert!(check_source("crates/bench/src/bad_unwrap.rs", &source)
            .iter()
            .all(|f| f.rule != RULE_UNWRAP));
    }

    #[test]
    fn good_fixture_is_clean() {
        let v = lint_fixture("good_annotated.rs");
        assert!(v.is_empty(), "unexpected findings: {v:?}");
    }

    #[test]
    fn allowlist_suppresses_by_rule_and_prefix() {
        let path = fixture_dir().join("bad_wall_clock.rs");
        let source = std::fs::read_to_string(&path).unwrap();
        let findings = check_source("crates/bench/src/methods.rs", &source);
        assert!(!findings.is_empty());
        let allow = Allowlist::parse("no-wall-clock crates/bench/\n");
        let left: Vec<_> = findings
            .iter()
            .filter(|v| !allow.allows(v.rule, &v.file))
            .collect();
        assert!(left.is_empty(), "allowlist failed to suppress: {left:?}");
        // Rule-scoped: the same prefix does not suppress other rules.
        assert!(!allow.allows(RULE_HASH_ITER, "crates/bench/src/methods.rs"));
    }
}
