//! Comment- and string-aware line scanner for the determinism linter.
//!
//! The lint rules are lexical, so their precision lives or dies on one
//! thing: never matching a pattern inside a comment or a string literal,
//! and never missing one because it sits next to a tricky token. This
//! module does that separation once, hand-rolled (the workspace builds
//! offline, so no `syn`): each source line is split into its *code* text
//! (string and char-literal contents blanked to spaces, comments removed)
//! and its *comment* text (line, doc, and block comment bodies), with the
//! lexer state — nested block comments, multi-line strings, raw strings
//! with `#` fences — carried across lines. A second pass tracks
//! `#[cfg(test)]` regions by brace depth so rules can exempt test code.
//!
//! The blanking is what lets the linter lint *itself*: its own rule
//! patterns are string literals, which scan to spaces.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code with comments stripped and string/char-literal
    /// contents replaced by spaces. Column positions are preserved for
    /// everything that remains.
    pub code: String,
    /// Concatenated comment text on the line (line-comment tail and/or
    /// block-comment content), in source order.
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` item (the attribute
    /// line itself counts).
    pub in_test: bool,
}

impl Line {
    /// A pure annotation line: no code, only a comment. Rules scan upward
    /// through these (and attribute lines) looking for `SAFETY` text.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }

    /// An attribute-only line (`#[...]`), transparent to the upward
    /// safety-comment scan.
    pub fn is_attribute_only(&self) -> bool {
        let t = self.code.trim();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

/// Lexer state carried across lines.
enum State {
    Normal,
    /// Inside `/* ... */`, with Rust's nesting depth.
    BlockComment(u32),
    /// Inside a regular `"..."` string (may span lines).
    Str,
    /// Inside a raw string `r#"..."#`, with the fence's `#` count.
    RawStr(u32),
}

/// Scans `source` into per-line code/comment splits with test-region
/// flags.
pub fn scan(source: &str) -> Vec<Line> {
    let mut state = State::Normal;
    let mut lines = Vec::new();
    for raw in source.lines() {
        lines.push(scan_line(raw, &mut state));
    }
    mark_test_regions(&mut lines);
    lines
}

fn scan_line(raw: &str, state: &mut State) -> Line {
    let chars: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(chars.len());
    let mut comment = String::new();
    let mut i = 0;
    // Previous *code* char, for deciding whether `r` / `b` can start a raw
    // or byte string (they cannot mid-identifier, e.g. in `var"`-less
    // `attr`-like names such as `for_r`).
    let mut prev_code: Option<char> = None;
    while i < chars.len() {
        let c = chars[i];
        match state {
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    comment.push_str("*/");
                    i += 2;
                    *depth -= 1;
                    if *depth == 0 {
                        *state = State::Normal;
                    }
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    comment.push_str("/*");
                    i += 2;
                    *depth += 1;
                } else {
                    comment.push(c);
                    i += 1;
                }
                code.push(' ');
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    *state = State::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                let n = *hashes as usize;
                if c == '"' && (0..n).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    code.push('"');
                    for _ in 0..n {
                        code.push(' ');
                    }
                    i += 1 + n;
                    *state = State::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment (also covers `///` and `//!`): the rest
                    // of the line is comment text.
                    comment.extend(&chars[i..]);
                    break;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    comment.push_str("/*");
                    code.push_str("  ");
                    *state = State::BlockComment(1);
                    i += 2;
                    continue;
                } else if c == '"' {
                    code.push('"');
                    *state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !is_ident(prev_code) {
                    // Possible raw/byte string: r", r#", br", b" (with any
                    // fence width for the raw forms).
                    if let Some(consumed) = string_prefix(&chars[i..], state) {
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        i += consumed;
                    } else {
                        code.push(c);
                        prev_code = Some(c);
                        i += 1;
                    }
                    continue;
                } else if c == '\'' {
                    // Char literal vs lifetime: `'\...'` and `'x'` are
                    // literals (blank them); anything else — `'a` in
                    // `&'a T` or `'static` — is a lifetime and stays.
                    if chars.get(i + 1) == Some(&'\\') {
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        for _ in i..(j + 1).min(chars.len()) {
                            code.push(' ');
                        }
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        code.push_str("   ");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                    prev_code = None;
                    continue;
                } else {
                    code.push(c);
                    i += 1;
                }
                prev_code = Some(c);
            }
        }
    }
    Line {
        code,
        comment,
        in_test: false,
    }
}

/// If `rest` starts a string literal with a prefix (`r`, `b`, `br`, plus
/// raw fences), updates `state` and returns the consumed opener length.
/// Plain `b"` enters the ordinary string state; raw forms record the
/// fence width.
fn string_prefix(rest: &[char], state: &mut State) -> Option<usize> {
    let mut j = 0;
    if rest[0] == 'b' {
        j = 1;
    }
    if rest.get(j) == Some(&'r') {
        let mut hashes = 0usize;
        let mut k = j + 1;
        while rest.get(k) == Some(&'#') {
            hashes += 1;
            k += 1;
        }
        if rest.get(k) == Some(&'"') {
            *state = State::RawStr(hashes as u32);
            return Some(k + 1);
        }
        return None;
    }
    if j == 1 && rest.get(1) == Some(&'"') {
        *state = State::Str;
        return Some(2);
    }
    None
}

fn is_ident(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Marks lines inside `#[cfg(test)]` items by tracking brace depth over
/// the blanked code (string braces are already spaces, so the depth is
/// exact up to macro pathologies).
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth = 0usize;
    let mut test_stack: Vec<usize> = Vec::new();
    let mut pending = false;
    for line in lines.iter_mut() {
        if line.code.contains("cfg(test)") {
            pending = true;
        }
        let entered = pending || !test_stack.is_empty();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        test_stack.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                }
                _ => {}
            }
        }
        line.in_test = entered || !test_stack.is_empty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let lines = scan("let x = \"has // no comment\"; // real SAFETY: note");
        assert!(!lines[0].code.contains("no comment"));
        assert!(lines[0].code.contains("let x ="));
        assert!(lines[0].comment.contains("SAFETY"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lines = scan("a /* x /* y */ z */ b\nc");
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[0].code.contains('z'));
        assert_eq!(lines[1].code, "c");
    }

    #[test]
    fn raw_strings_with_fences_span_lines() {
        let src = "let p = r#\"multi\nline // not a comment\"#;\nafter";
        let lines = scan(src);
        assert!(!lines[1].code.contains("not a comment"));
        assert!(lines[1].comment.is_empty());
        assert_eq!(lines[2].code, "after");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = scan("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(lines[0].code.contains("<'a>"));
        assert!(!lines[0].code.contains("'x'"));
    }

    #[test]
    fn escaped_char_literals_blank_fully() {
        let lines = scan("let q = '\\''; let r = '\\n'; let l: &'static str = s;");
        assert!(lines[0].code.contains("'static"));
        assert!(!lines[0].code.contains("\\n"));
    }

    #[test]
    fn cfg_test_region_tracks_brace_depth() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }
}
