//! Known-bad fixture for the `atomic-ordering` and
//! `relaxed-protocol-field` rules. Linted by unit tests only (the
//! workspace sweep skips `fixtures/`).

use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot {
    top: AtomicUsize,
}

fn raw_atomic_traffic(slot: &Slot, n: &AtomicUsize) {
    n.store(1, Ordering::SeqCst);
    // A hand-rolled protocol-field relaxation outside the protocol
    // modules: both rules fire here.
    slot.top.store(2, Ordering::Relaxed);
}

fn cmp_ordering_is_fine(a: u32, b: u32) -> std::cmp::Ordering {
    // `Ordering::Less` and friends are std::cmp — must NOT match.
    match a.cmp(&b) {
        std::cmp::Ordering::Less => std::cmp::Ordering::Less,
        other => other,
    }
}

fn mentions_in_strings_are_fine() -> &'static str {
    "Ordering::Relaxed on .top is only text here, like AtomicUsize"
}
