//! Fixture: `.partial_cmp(` call site (line 11 only).

pub struct P(pub f64);

impl PartialOrd for P {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}

pub fn bad(a: f64, b: f64) -> Option<std::cmp::Ordering> { a.partial_cmp(&b) }

pub fn not_code() -> &'static str {
    "a string mentioning .partial_cmp( is not a call"
}
