//! Fixture: `unsafe` sites missing a SAFETY justification (lines 6, 14).

pub struct Wrapper(*mut i32);

pub fn bare_block(p: &Wrapper) -> i32 {
    unsafe { *p.0 }
}

pub fn annotated(p: &Wrapper) -> i32 {
    // SAFETY: fixture-annotated — callers pass a valid pointer.
    unsafe { *p.0 }
}
// A comment that says nothing relevant.
unsafe impl Send for Wrapper {}

/// # Safety
/// Callers must pass a valid, aligned pointer.
pub unsafe fn documented(p: *mut i32) -> i32 {
    *p
}

// SAFETY: attribute-transparent — the upward scan skips `#[inline]`.
#[inline]
pub unsafe fn attributed(p: *mut i32) -> i32 {
    *p
}
