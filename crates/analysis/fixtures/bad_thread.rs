//! Fixture: raw threading outside the executor shim (lines 4, 8).

/// Global state the pool-less would share.
pub static mut COUNTER: usize = 0;

pub fn spawn_worker() -> std::thread::JoinHandle<()> {
    // Spawned directly instead of going through the pool.
    std::thread::spawn(|| {})
}

#[cfg(test)]
mod tests {
    #[test]
    fn helper_threads_are_fine_in_tests() {
        let h = std::thread::spawn(|| {});
        h.join().unwrap();
    }
}
