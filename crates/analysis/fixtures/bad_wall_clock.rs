//! Fixture: wall-clock reads in algorithm code (lines 4, 9).

pub fn timed() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

pub fn epoch() -> u64 {
    let _t = std::time::SystemTime::now();
    0
}
