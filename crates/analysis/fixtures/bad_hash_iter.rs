//! Fixture: hash-container iteration in non-test code (lines 8, 20, 29).
use std::collections::{HashMap, HashSet};

pub fn for_loop_over_map() -> usize {
    let mut groups: HashMap<usize, usize> = HashMap::new();
    groups.insert(1, 2);
    let mut total = 0;
    for (_k, v) in &groups {
        total += v;
    }
    total
}

pub struct Registry {
    names: HashMap<String, usize>,
}

impl Registry {
    pub fn first_name(&self) -> Option<&String> {
        self.names.keys().next()
    }

    pub fn lookup(&self, k: &str) -> Option<usize> {
        self.names.get(k).copied()
    }
}

pub fn common(sets: &[HashSet<usize>], u: usize, v: usize) -> usize {
    sets[u].intersection(&sets[v]).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_in_tests_is_exempt() {
        let m: HashMap<usize, usize> = HashMap::new();
        for _ in &m {}
    }
}
