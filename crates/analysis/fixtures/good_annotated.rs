//! Fixture: a clean file — every rule's negative space in one place.
use std::collections::HashMap;

/// Lookup and sorted materialisation: no hash-order dependence.
pub fn sorted_view(m: &HashMap<usize, usize>) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> = m.get(&0).map(|&v| (0, v)).into_iter().collect();
    pairs.sort_unstable();
    pairs
}

pub fn deref(p: *const i32) -> i32 {
    // SAFETY: fixture — callers pass valid pointers.
    unsafe { *p }
}

/// # Safety
/// `p` must be valid for reads.
pub unsafe fn documented(p: *const i32) -> i32 {
    *p
}

pub fn order(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

/// An `unsafe fn(...)` function-pointer *type* is not an unsafe operation.
pub struct Hook {
    pub run: unsafe fn(*const ()),
}

pub fn mentions_in_strings() -> &'static str {
    "Instant::now and thread::spawn and unsafe in a string are fine"
}
