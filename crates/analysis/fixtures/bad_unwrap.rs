//! Known-bad fixture for the `no-unwrap` rule. The fixture test lints it
//! under a hot-path pseudo-path (`crates/core/src/...`); the rule is
//! applicability-scoped and reports nothing elsewhere.

fn hot_path(values: &[f64]) -> f64 {
    let first = values.first().unwrap();
    // `expect` with an invariant message is the sanctioned form.
    let last = values.last().expect("caller guarantees non-empty input");
    // `unwrap_or` does not panic and must not match.
    let mid = values.get(values.len() / 2).copied().unwrap_or(0.0);
    first + last + mid
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
