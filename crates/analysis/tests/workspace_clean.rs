//! The workspace itself must pass `pfg_lint` with the checked-in
//! allowlist. This is the test that keeps the determinism/concurrency
//! contracts from rotting: any new `unsafe` without a SAFETY note, hash
//! iteration on a result path, `partial_cmp` comparator, wall-clock read
//! in algorithm code, or raw thread outside the executor shim fails CI
//! here with the exact file and line.

use std::path::Path;

use pfg_analysis::{lint_tree, Allowlist};

#[test]
fn workspace_is_lint_clean_under_checked_in_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    assert!(
        root.join("Cargo.toml").exists(),
        "expected workspace root, got {}",
        root.display()
    );

    let allow = Allowlist::load(&root.join("lint.allow")).expect("lint.allow loads");
    assert!(
        !allow.is_empty(),
        "lint.allow should carry the documented suppressions"
    );

    let violations = lint_tree(&root, &allow).expect("lint sweep succeeds");
    assert!(
        violations.is_empty(),
        "workspace lint findings:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
