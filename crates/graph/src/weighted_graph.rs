//! Undirected weighted graphs stored as adjacency lists.
//!
//! The filtered graphs produced by TMFG/PMFG are sparse (`3n − 8` edges for
//! a maximal planar graph), so an adjacency-list representation keeps the
//! DBHT's shortest-path computations linear in the number of edges.

/// An undirected weighted graph on vertices `0..n`.
///
/// Parallel edges are not allowed; [`WeightedGraph::add_edge`] panics if the
/// edge already exists (the filtered-graph algorithms never re-add edges).
#[derive(Debug, Clone, Default)]
pub struct WeightedGraph {
    adj: Vec<Vec<(usize, f64)>>,
    num_edges: usize,
}

impl WeightedGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the undirected edge `(u, v)` with weight `w`.
    ///
    /// **Contract:** the edge must not already exist. The filtered-graph
    /// algorithms never re-add a decided edge, and an `O(degree)` duplicate
    /// scan on every insertion would make dense builds superlinear, so
    /// duplicates are checked with `debug_assert!` only — a release-mode
    /// violation silently creates a parallel edge, which the planarity and
    /// shortest-path code does not support. Callers inserting edges from
    /// untrusted sources should guard with [`WeightedGraph::has_edge`].
    ///
    /// # Panics
    /// Panics on self loops or out-of-range endpoints (all builds), and on
    /// duplicate edges in debug builds.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(u != v, "self loops are not allowed");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "vertex out of range"
        );
        debug_assert!(!self.has_edge(u, v), "duplicate edge ({u}, {v})");
        self.adj[u].push((v, w));
        self.adj[v].push((u, w));
        self.num_edges += 1;
    }

    /// Returns `true` if the edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].iter().any(|&(x, _)| x == v)
    }

    /// Removes the undirected edge `(u, v)`. Returns `true` if it existed.
    /// Used by the PMFG construction to roll back a tentative insertion
    /// that violated planarity.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let before = self.adj[u].len();
        self.adj[u].retain(|&(x, _)| x != v);
        if self.adj[u].len() == before {
            return false;
        }
        self.adj[v].retain(|&(x, _)| x != u);
        self.num_edges -= 1;
        true
    }

    /// Weight of edge `(u, v)`, if present.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        self.adj[u].iter().find(|&&(x, _)| x == v).map(|&(_, w)| w)
    }

    /// Neighbors of `u` with edge weights.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Unweighted degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Weighted degree of `u` (sum of incident edge weights). This is the
    /// `deg(v)` used in Algorithm 3's `OUT_VAL` formula.
    pub fn weighted_degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum()
    }

    /// Sum of all edge weights (each undirected edge counted once). Used for
    /// the Figure 7 edge-sum-ratio experiment.
    pub fn total_edge_weight(&self) -> f64 {
        self.adj
            .iter()
            .enumerate()
            .map(|(u, nbrs)| {
                nbrs.iter()
                    .filter(|&&(v, _)| v > u)
                    .map(|&(_, w)| w)
                    .sum::<f64>()
            })
            .sum()
    }

    /// Iterator over all undirected edges `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&(v, _)| v > u)
                .map(move |&(v, w)| (u, v, w))
        })
    }

    /// Returns `true` if the graph is connected (vacuously true for `n <= 1`).
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        if n <= 1 {
            return true;
        }
        crate::bfs::bfs_reachable(self, 0).iter().all(|&r| r)
    }

    /// Checks the defining edge-count property of a maximal planar graph on
    /// `n >= 3` vertices: exactly `3n − 6` edges (the TMFG has `3n − 6`
    /// edges counting the initial clique: 6 edges for n=4 plus 3 per later
    /// vertex gives `3n − 6`).
    pub fn has_maximal_planar_edge_count(&self) -> bool {
        let n = self.num_vertices();
        n >= 3 && self.num_edges == 3 * n - 6
    }

    /// Returns the set of triangles `(a, b, c)` with `a < b < c`. Quadratic
    /// in the number of edges; intended for tests and small graphs.
    pub fn triangles(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        // Sorted adjacency + two-pointer intersection: deterministic order
        // (a hash-set intersection would enumerate in hash order).
        let sorted: Vec<Vec<usize>> = self
            .adj
            .iter()
            .map(|nbrs| {
                let mut ids: Vec<usize> = nbrs.iter().map(|&(v, _)| v).collect();
                ids.sort_unstable();
                ids
            })
            .collect();
        for (u, v, _) in self.edges() {
            let (a, b) = (&sorted[u], &sorted[v]);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if a[i] > v {
                            out.push((u, v, a[i]));
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        WeightedGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
    }

    #[test]
    fn basic_edge_queries() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_weight(0, 2), Some(3.0));
        assert_eq!(g.edge_weight(2, 0), Some(3.0));
        assert_eq!(g.edge_weight(1, 1), None);
    }

    #[test]
    fn degrees_and_weights() {
        let g = triangle();
        assert_eq!(g.degree(1), 2);
        assert!((g.weighted_degree(0) - 4.0).abs() < 1e-12);
        assert!((g.total_edge_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_connected());
        let mut h = WeightedGraph::new(4);
        h.add_edge(0, 1, 1.0);
        assert!(!h.is_connected());
        assert!(WeightedGraph::new(1).is_connected());
        assert!(WeightedGraph::new(0).is_connected());
    }

    #[test]
    fn remove_edge_rolls_back_insertion() {
        let mut g = triangle();
        assert!(g.remove_edge(0, 1));
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
        assert!(!g.remove_edge(0, 1));
        // Re-adding after removal is allowed.
        g.add_edge(0, 1, 7.0);
        assert_eq!(g.edge_weight(0, 1), Some(7.0));
    }

    #[test]
    #[should_panic]
    fn duplicate_edge_panics() {
        let mut g = triangle();
        g.add_edge(0, 1, 5.0);
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(1, 1, 1.0);
    }

    #[test]
    fn triangles_of_k4() {
        let mut g = WeightedGraph::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 1.0);
            }
        }
        let mut tris = g.triangles();
        tris.sort_unstable();
        assert_eq!(tris, vec![(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)]);
    }

    #[test]
    fn maximal_planar_edge_count() {
        let mut g = WeightedGraph::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 1.0);
            }
        }
        assert!(g.has_maximal_planar_edge_count());
    }
}
