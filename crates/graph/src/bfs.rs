//! Breadth-first search over [`WeightedGraph`]s.
//!
//! The original DBHT algorithm uses BFS to split the graph into the interior
//! and exterior of each separating triangle; our optimized direction
//! computation avoids that, but BFS is still used for reference
//! implementations in tests and for reachability in the directed bubble
//! tree.

use crate::weighted_graph::WeightedGraph;
use std::collections::VecDeque;

/// Hop distances from `source`; unreachable vertices get `usize::MAX`.
pub fn bfs_distances(graph: &WeightedGraph, source: usize) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in graph.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Boolean reachability from `source`.
pub fn bfs_reachable(graph: &WeightedGraph, source: usize) -> Vec<bool> {
    bfs_distances(graph, source)
        .into_iter()
        .map(|d| d != usize::MAX)
        .collect()
}

/// BFS restricted to the subgraph induced by `allowed` vertices, starting
/// from `source` (which must be allowed). Used by the quadratic reference
/// implementation of the bubble-tree direction computation: removing a
/// separating triangle and flooding from one side yields its interior.
pub fn bfs_reachable_within(graph: &WeightedGraph, source: usize, allowed: &[bool]) -> Vec<bool> {
    let n = graph.num_vertices();
    debug_assert_eq!(allowed.len(), n);
    debug_assert!(allowed[source]);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[source] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in graph.neighbors(u) {
            if allowed[v] && !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 1.0);
        }
        g
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_vertices_are_max() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(bfs_reachable(&g, 0), vec![true, true, false, false]);
    }

    #[test]
    fn restricted_bfs_respects_allowed_set() {
        let g = path_graph(5);
        let allowed = vec![true, true, false, true, true];
        let seen = bfs_reachable_within(&g, 0, &allowed);
        assert_eq!(seen, vec![true, true, false, false, false]);
        let seen2 = bfs_reachable_within(&g, 4, &allowed);
        assert_eq!(seen2, vec![false, false, false, true, true]);
    }
}
