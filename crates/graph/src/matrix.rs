//! Dense symmetric matrices used for similarity and dissimilarity inputs.
//!
//! The paper's input is an `n × n` similarity matrix `S` (e.g. Pearson
//! correlations) plus a dissimilarity matrix `D` (e.g. `sqrt(2(1 − p))`).
//! [`SymmetricMatrix`] stores the full dense matrix row-major; reads are
//! `O(1)` and the memory layout keeps row scans (the hot loop of the TMFG
//! gain computation) cache friendly.

use rayon::prelude::*;

/// A dense symmetric `n × n` matrix of `f64` values.
///
/// The full matrix is stored (both triangles) so row scans never branch.
/// Writes through [`SymmetricMatrix::set`] keep the matrix symmetric.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymmetricMatrix {
    /// Creates an `n × n` matrix filled with `fill`.
    pub fn filled(n: usize, fill: f64) -> Self {
        Self {
            n,
            data: vec![fill; n * n],
        }
    }

    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self::filled(n, 0.0)
    }

    /// Builds a matrix from a row-major slice of length `n * n`.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n` or if the data is not symmetric to
    /// within `1e-9`.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "matrix data must have n*n entries");
        let m = Self { n, data };
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(
                    (m.get(i, j) - m.get(j, i)).abs() <= 1e-9,
                    "matrix must be symmetric: ({i},{j})"
                );
            }
        }
        m
    }

    /// Builds a matrix from row-major data that the producer has already
    /// made *exactly* symmetric (e.g. the symmetrised APSP buffer, or the
    /// tiled correlation kernel that writes both mirrored positions of each
    /// pair from a single computed value), skipping
    /// [`SymmetricMatrix::from_rows`]'s `O(n²)` tolerance sweep and taking
    /// ownership of the buffer without a copy.
    ///
    /// Debug builds still verify exact symmetry.
    pub fn from_symmetrized(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "matrix data must have n*n entries");
        let m = Self { n, data };
        #[cfg(debug_assertions)]
        for i in 0..n {
            for j in (i + 1)..n {
                debug_assert!(
                    m.get(i, j).to_bits() == m.get(j, i).to_bits(),
                    "from_symmetrized requires exact symmetry: ({i},{j})"
                );
            }
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` for the upper triangle
    /// (including the diagonal) and mirroring it.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = f(i, j);
                m.set(i, j, v);
            }
        }
        m
    }

    /// Number of rows (= columns).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns the value at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j]
    }

    /// Sets `(i, j)` and `(j, i)` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j] = value;
        self.data[j * self.n + i] = value;
    }

    /// Returns row `i` as a slice of length `n`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Sum of row `i` (the "total sum across its row" used to pick the
    /// initial 4-clique of the TMFG).
    pub fn row_sum(&self, i: usize) -> f64 {
        self.row(i).iter().sum()
    }

    /// Row sums for every row, computed in parallel.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.n)
            .into_par_iter()
            .map(|i| self.row_sum(i))
            .collect()
    }

    /// Indices of the `k` rows with the largest row sums, in decreasing
    /// order of row sum (ties broken by smaller index).
    pub fn top_rows_by_sum(&self, k: usize) -> Vec<usize> {
        let sums = self.row_sums();
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.sort_by(|&a, &b| sums[b].total_cmp(&sums[a]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    /// Applies `f` to every entry, returning a new matrix. Used e.g. to turn
    /// a correlation matrix into the dissimilarity `sqrt(2(1 − p))`. The
    /// parallel map and the collect fuse into a single pass over the data.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Self {
        let data: Vec<f64> = self.data.par_iter().map(|&x| f(x)).collect();
        Self { n: self.n, data }
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// A dense symmetric `n × n` matrix stored as `f32`, halving the `n²`
/// memory footprint of [`SymmetricMatrix`].
///
/// Reads widen to `f64` at the [`SymmetricMatrixF32::get`] boundary, so
/// every consumer that only *compares* weights (TMFG gains, PMFG candidate
/// order, DBHT edge lookups — all `f64::total_cmp` based) works unchanged
/// on top of this storage. The values themselves carry ~7 significant
/// decimal digits, which is far below the noise floor of estimated
/// correlations; the end-to-end clustering quality impact is covered by a
/// differential ARI test in the bench crate.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricMatrixF32 {
    n: usize,
    data: Vec<f32>,
}

impl SymmetricMatrixF32 {
    /// Creates an `n × n` matrix filled with `fill`.
    pub fn filled(n: usize, fill: f32) -> Self {
        Self {
            n,
            data: vec![fill; n * n],
        }
    }

    /// Builds a matrix from row-major data the producer has already made
    /// *exactly* symmetric (both mirrored positions written from one
    /// computed value). Debug builds verify exact bit symmetry.
    pub fn from_symmetrized(n: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * n, "matrix data must have n*n entries");
        let m = Self { n, data };
        #[cfg(debug_assertions)]
        for i in 0..n {
            for j in (i + 1)..n {
                debug_assert!(
                    m.data[i * n + j].to_bits() == m.data[j * n + i].to_bits(),
                    "from_symmetrized requires exact symmetry: ({i},{j})"
                );
            }
        }
        m
    }

    /// Number of rows (= columns).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns the value at `(i, j)`, widened to `f64`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j] as f64
    }

    /// Sets `(i, j)` and `(j, i)` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f32) {
        debug_assert!(i < self.n && j < self.n);
        self.data[i * self.n + j] = value;
        self.data[j * self.n + i] = value;
    }

    /// Sum of row `i`, accumulated in `f64` in index order.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.data[i * self.n..(i + 1) * self.n]
            .iter()
            .map(|&x| x as f64)
            .sum()
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_keeps_symmetry() {
        let mut m = SymmetricMatrix::zeros(4);
        m.set(1, 3, 0.7);
        assert_eq!(m.get(3, 1), 0.7);
        assert_eq!(m.get(1, 3), 0.7);
    }

    #[test]
    fn row_sums_and_top_rows() {
        let m = SymmetricMatrix::from_fn(4, |i, j| if i == j { 1.0 } else { (i + j) as f64 });
        let sums = m.row_sums();
        assert_eq!(sums.len(), 4);
        assert!((sums[3] - (3.0 + 4.0 + 5.0 + 1.0)).abs() < 1e-12);
        let top = m.top_rows_by_sum(2);
        assert_eq!(top, vec![3, 2]);
    }

    #[test]
    fn from_rows_accepts_symmetric() {
        let m = SymmetricMatrix::from_rows(2, vec![1.0, 0.5, 0.5, 1.0]);
        assert_eq!(m.get(0, 1), 0.5);
    }

    #[test]
    #[should_panic]
    fn from_rows_rejects_asymmetric() {
        SymmetricMatrix::from_rows(2, vec![1.0, 0.5, 0.4, 1.0]);
    }

    #[test]
    fn map_transforms_entries() {
        let m = SymmetricMatrix::from_rows(2, vec![1.0, 0.5, 0.5, 1.0]);
        let d = m.map(|p| (2.0 * (1.0 - p)).sqrt());
        assert!((d.get(0, 1) - 1.0).abs() < 1e-12);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn top_rows_tie_breaks_by_index() {
        let m = SymmetricMatrix::filled(3, 1.0);
        assert_eq!(m.top_rows_by_sum(3), vec![0, 1, 2]);
    }
}
