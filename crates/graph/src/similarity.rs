//! Abstraction over similarity-matrix storage plus the top-K sparse
//! candidate prescreen.
//!
//! Filtered-graph construction (TMFG, PMFG) only ever *reads* the
//! similarity matrix — single entries, row sums, and the best-row seed —
//! and only *compares* the weights it reads. [`SimilaritySource`] captures
//! exactly that surface, so the same construction code runs over the dense
//! `f64` matrix, the half-footprint `f32` matrix, or any derived view.
//!
//! [`TopKCandidates`] is the sparse prescreen: one pass over the source
//! keeps the K strongest neighbors of every vertex under the strict
//! `(weight desc, i asc, j asc)` total order — the same order PMFG's
//! candidate stream and TMFG's gain tie-breaks use — plus the *exact*
//! full row sums and each vertex's K-th key. The K-th keys are what make
//! prescreened construction provably identical to the dense path: a pair
//! absent from the prescreen must sort strictly after the K-th key of
//! *both* its endpoints, so consumers know precisely when their view of
//! the candidate order becomes incomplete and can fall back to an exact
//! re-scan of the affected vertex (counted, and differentially tested).

use std::cmp::Ordering;

use rayon::prelude::*;

use crate::matrix::{SymmetricMatrix, SymmetricMatrixF32};
use crate::shortest_paths::PairDistances;

/// Read-only access to a symmetric similarity matrix.
///
/// Implementations must be symmetric (`get(i, j) == get(j, i)` bitwise)
/// with a meaningful diagonal (`get(i, i)` is included in row sums, as in
/// [`SymmetricMatrix::row_sum`]). All default methods accumulate in index
/// order so results are bitwise identical across implementations that
/// return bitwise-identical entries.
pub trait SimilaritySource: Sync {
    /// Number of rows (= columns = vertices).
    fn n(&self) -> usize;

    /// The similarity of `(i, j)` widened to `f64`.
    fn get(&self, i: usize, j: usize) -> f64;

    /// Sum of row `i` including the diagonal, accumulated in index order.
    fn row_sum(&self, i: usize) -> f64 {
        (0..self.n()).map(|j| self.get(i, j)).sum()
    }

    /// Row sums for every row, computed in parallel.
    fn row_sums(&self) -> Vec<f64> {
        (0..self.n())
            .into_par_iter()
            .map(|i| self.row_sum(i))
            .collect()
    }

    /// Indices of the `k` rows with the largest row sums, in decreasing
    /// order of row sum (ties broken by smaller index) — the TMFG seed
    /// order.
    fn top_rows_by_sum(&self, k: usize) -> Vec<usize> {
        let sums = self.row_sums();
        let mut idx: Vec<usize> = (0..self.n()).collect();
        idx.sort_by(|&a, &b| sums[b].total_cmp(&sums[a]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    /// First NaN entry of the strict upper triangle in `(row, col)`
    /// lexicographic order, scanned in parallel.
    fn find_nan(&self) -> Option<(usize, usize)> {
        let n = self.n();
        (0..n)
            .into_par_iter()
            .filter_map(|row| {
                ((row + 1)..n)
                    .find(|&col| self.get(row, col).is_nan())
                    .map(|col| (row, col))
            })
            .min()
    }
}

impl SimilaritySource for SymmetricMatrix {
    #[inline]
    fn n(&self) -> usize {
        SymmetricMatrix::n(self)
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        SymmetricMatrix::get(self, i, j)
    }

    fn row_sum(&self, i: usize) -> f64 {
        SymmetricMatrix::row_sum(self, i)
    }

    fn row_sums(&self) -> Vec<f64> {
        SymmetricMatrix::row_sums(self)
    }

    fn top_rows_by_sum(&self, k: usize) -> Vec<usize> {
        SymmetricMatrix::top_rows_by_sum(self, k)
    }
}

impl SimilaritySource for SymmetricMatrixF32 {
    #[inline]
    fn n(&self) -> usize {
        SymmetricMatrixF32::n(self)
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        SymmetricMatrixF32::get(self, i, j)
    }

    fn row_sum(&self, i: usize) -> f64 {
        SymmetricMatrixF32::row_sum(self, i)
    }
}

/// The strict total order in which candidate pairs are emitted by PMFG's
/// stream and ranked by the prescreen: weight descending under
/// `f64::total_cmp`, then smaller `i`, then smaller `j` (pairs normalized
/// to `i < j`). `Less` means "`a` comes first".
#[inline]
pub fn emission_cmp(wa: f64, pa: (u32, u32), wb: f64, pb: (u32, u32)) -> Ordering {
    wb.total_cmp(&wa)
        .then(pa.0.cmp(&pb.0))
        .then(pa.1.cmp(&pb.1))
}

#[inline]
fn normalized(v: usize, u: usize) -> (u32, u32) {
    if v < u {
        (v as u32, u as u32)
    } else {
        (u as u32, v as u32)
    }
}

/// Per-vertex result of the prescreen pass.
struct VertexScreen {
    /// The K strongest neighbors `(other, weight)` in emission order.
    list: Vec<(u32, f64)>,
    /// Key of the K-th kept pair; `None` when the list holds *every*
    /// neighbor of the vertex (the view of this vertex is complete).
    kth: Option<(f64, u32, u32)>,
    /// Exact full row sum (diagonal included, index order).
    row_sum: f64,
    /// First NaN column strictly right of the diagonal, if any.
    nan_col: Option<usize>,
}

/// The top-K sparse candidate prescreen over a [`SimilaritySource`].
///
/// One parallel pass keeps, for every vertex, the K neighbors whose pairs
/// sort earliest under [`emission_cmp`], the key of the K-th kept pair
/// (the vertex's *exhaustion threshold*), and the exact full row sum —
/// accumulated in index order, so seeds chosen by
/// [`TopKCandidates::top_rows_by_sum`] are bitwise identical to the dense
/// [`SimilaritySource::top_rows_by_sum`].
///
/// The structural guarantee consumers build on: a pair `(i, j)` that is in
/// *neither* endpoint's list sorts strictly after **both** `kth_key(i)`
/// and `kth_key(j)`. Equivalently, `(i, j)` is in the prescreen pool if
/// and only if its key is `<=` the K-th key of at least one endpoint —
/// which is what [`TopKCandidates::in_pool`] tests without any search.
pub struct TopKCandidates {
    n: usize,
    k: usize,
    lists: Vec<Vec<(u32, f64)>>,
    kth: Vec<Option<(f64, u32, u32)>>,
    row_sums: Vec<f64>,
    nan_entry: Option<(usize, usize)>,
}

impl TopKCandidates {
    /// Runs the prescreen, keeping the `k` strongest neighbors per vertex.
    pub fn build<S: SimilaritySource>(s: &S, k: usize) -> Self {
        let n = s.n();
        let k = k.max(1);
        let screens: Vec<VertexScreen> = (0..n)
            .into_par_iter()
            .with_max_len(1)
            .map(|v| Self::screen_vertex(s, v, k))
            .collect();
        let mut lists = Vec::with_capacity(n);
        let mut kth = Vec::with_capacity(n);
        let mut row_sums = Vec::with_capacity(n);
        let mut nan_entry: Option<(usize, usize)> = None;
        for (v, screen) in screens.into_iter().enumerate() {
            if let Some(col) = screen.nan_col {
                let entry = (v, col);
                nan_entry = Some(match nan_entry {
                    Some(prev) if prev <= entry => prev,
                    _ => entry,
                });
            }
            lists.push(screen.list);
            kth.push(screen.kth);
            row_sums.push(screen.row_sum);
        }
        Self {
            n,
            k,
            lists,
            kth,
            row_sums,
            nan_entry,
        }
    }

    fn screen_vertex<S: SimilaritySource>(s: &S, v: usize, k: usize) -> VertexScreen {
        let n = s.n();
        let mut row_sum = 0.0;
        let mut list: Vec<(u32, f64)> = Vec::with_capacity(k + 1);
        let mut overflowed = false;
        let mut nan_col = None;
        for u in 0..n {
            let w = s.get(v, u);
            row_sum += w;
            if u == v {
                continue;
            }
            if w.is_nan() && u > v && nan_col.is_none() {
                nan_col = Some(u);
            }
            let pair = normalized(v, u);
            let pos = list.partition_point(|&(other, ow)| {
                emission_cmp(ow, normalized(v, other as usize), w, pair) == Ordering::Less
            });
            if pos >= k {
                overflowed = true;
                continue;
            }
            list.insert(pos, (u as u32, w));
            if list.len() > k {
                list.pop();
                overflowed = true;
            }
        }
        let kth = if overflowed {
            debug_assert_eq!(list.len(), k);
            let (other, w) = list[k - 1];
            let (i, j) = normalized(v, other as usize);
            Some((w, i, j))
        } else {
            None
        };
        VertexScreen {
            list,
            kth,
            row_sum,
            nan_col,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The per-vertex list budget K.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The K strongest neighbors of `v` as `(other, weight)`, in emission
    /// order.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[(u32, f64)] {
        &self.lists[v]
    }

    /// The exhaustion threshold of `v`: the key of its K-th kept pair, or
    /// `None` when the list holds every neighbor (a complete view that
    /// never exhausts).
    #[inline]
    pub fn kth_key(&self, v: usize) -> Option<(f64, u32, u32)> {
        self.kth[v]
    }

    /// The K-th kept *weight* of `v`, or `None` for a complete view. Any
    /// neighbor of `v` missing from the list has weight `<=` this.
    #[inline]
    pub fn kth_weight(&self, v: usize) -> Option<f64> {
        self.kth[v].map(|(w, _, _)| w)
    }

    /// Whether the pair `(i, j)` with weight `w` is in the pool (in at
    /// least one endpoint's list). No search: membership is equivalent to
    /// the pair's key sorting `<=` the K-th key of either endpoint.
    pub fn in_pool(&self, i: usize, j: usize, w: f64) -> bool {
        let pair = normalized(i, j);
        let covered = |v: usize| match self.kth[v] {
            None => true,
            Some((kw, ki, kj)) => emission_cmp(w, pair, kw, (ki, kj)) != Ordering::Greater,
        };
        covered(i) || covered(j)
    }

    /// Exact full row sums (bitwise identical to the dense
    /// [`SimilaritySource::row_sum`]).
    #[inline]
    pub fn row_sums(&self) -> &[f64] {
        &self.row_sums
    }

    /// Indices of the `k` rows with the largest exact row sums — the same
    /// selection, order, and tie-break as the dense
    /// [`SimilaritySource::top_rows_by_sum`].
    pub fn top_rows_by_sum(&self, k: usize) -> Vec<usize> {
        let sums = &self.row_sums;
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.sort_by(|&a, &b| sums[b].total_cmp(&sums[a]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    /// First NaN entry of the strict upper triangle in `(row, col)` order,
    /// recorded for free during the prescreen pass (same result as
    /// [`SimilaritySource::find_nan`]).
    #[inline]
    pub fn nan_entry(&self) -> Option<(usize, usize)> {
        self.nan_entry
    }

    /// All distinct pairs of the pool, sorted by [`emission_cmp`] — the
    /// seed list of the prescreened PMFG candidate stream.
    pub fn pool_pairs(&self) -> Vec<(u32, u32)> {
        let mut keyed: Vec<(f64, u32, u32)> = Vec::new();
        for (v, list) in self.lists.iter().enumerate() {
            for &(other, w) in list {
                let (i, j) = normalized(v, other as usize);
                // Keep each pair once: at its smaller endpoint if listed
                // there, otherwise at the larger one.
                if v == i as usize || !self.listed_at(i as usize, j as usize) {
                    keyed.push((w, i, j));
                }
            }
        }
        keyed.par_sort_unstable_by(|a, b| emission_cmp(a.0, (a.1, a.2), b.0, (b.1, b.2)));
        keyed.into_iter().map(|(_, i, j)| (i, j)).collect()
    }

    /// Whether pair `(v, u)` appears in `v`'s own list.
    fn listed_at(&self, v: usize, u: usize) -> bool {
        self.lists[v].iter().any(|&(other, _)| other as usize == u)
    }

    /// Approximate heap footprint of the prescreen structure in bytes.
    pub fn memory_bytes(&self) -> usize {
        let list_bytes: usize = self
            .lists
            .iter()
            .map(|l| l.capacity() * std::mem::size_of::<(u32, f64)>())
            .sum();
        list_bytes
            + self.kth.capacity() * std::mem::size_of::<Option<(f64, u32, u32)>>()
            + self.row_sums.capacity() * std::mem::size_of::<f64>()
    }
}

/// A [`PairDistances`] view deriving the dissimilarity
/// `d = sqrt(2 (1 − s))` from a similarity source on the fly — no dense
/// `n²` dissimilarity matrix is ever materialized.
///
/// The DBHT back half only reads dissimilarities at the `3n − 6` edges of
/// the filtered graph and through its restricted-APSP caches, so at large
/// `n` this view replaces an `8 n²`-byte allocation with zero bytes.
pub struct DissimilarityView<'a, S: SimilaritySource> {
    source: &'a S,
}

impl<'a, S: SimilaritySource> DissimilarityView<'a, S> {
    /// Wraps a similarity source.
    pub fn new(source: &'a S) -> Self {
        Self { source }
    }
}

impl<S: SimilaritySource> PairDistances for DissimilarityView<'_, S> {
    #[inline]
    fn pair(&self, u: usize, v: usize) -> f64 {
        (2.0 * (1.0 - self.source.get(u, v))).max(0.0).sqrt()
    }

    #[inline]
    fn num_vertices(&self) -> usize {
        self.source.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(n: usize, seed: u64) -> SymmetricMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        SymmetricMatrix::from_fn(n, |i, j| if i == j { 1.0 } else { 2.0 * next() - 1.0 })
    }

    #[test]
    fn matrix_sources_agree_on_reads() {
        let m = random_matrix(12, 7);
        let n = SimilaritySource::n(&m);
        assert_eq!(n, 12);
        let f32_data: Vec<f32> = m.as_slice().iter().map(|&x| x as f32).collect();
        let m32 = SymmetricMatrixF32::from_symmetrized(12, f32_data);
        for i in 0..n {
            for j in 0..n {
                let wide = SimilaritySource::get(&m32, i, j);
                assert!((wide - m.get(i, j)).abs() < 1e-6);
                assert_eq!(wide, (m.get(i, j) as f32) as f64);
            }
        }
    }

    #[test]
    fn top_k_lists_match_brute_force() {
        let m = random_matrix(20, 3);
        let k = 5;
        let topk = TopKCandidates::build(&m, k);
        for v in 0..20 {
            let mut pairs: Vec<(f64, (u32, u32), u32)> = (0..20)
                .filter(|&u| u != v)
                .map(|u| (m.get(v, u), normalized(v, u), u as u32))
                .collect();
            pairs.sort_by(|a, b| emission_cmp(a.0, a.1, b.0, b.1));
            let expected: Vec<(u32, f64)> = pairs.iter().take(k).map(|p| (p.2, p.0)).collect();
            assert_eq!(topk.neighbors(v), expected.as_slice(), "vertex {v}");
            let (kw, ki, kj) = topk.kth_key(v).expect("n - 1 > k so every list overflows");
            assert_eq!((kw, (ki, kj)), (pairs[k - 1].0, pairs[k - 1].1));
        }
    }

    #[test]
    fn small_graphs_are_complete() {
        let m = random_matrix(4, 9);
        let topk = TopKCandidates::build(&m, 10);
        for v in 0..4 {
            assert_eq!(topk.neighbors(v).len(), 3);
            assert!(topk.kth_key(v).is_none());
            assert!(topk.in_pool(v, (v + 1) % 4, m.get(v, (v + 1) % 4)));
        }
    }

    #[test]
    fn row_sums_are_bitwise_exact() {
        let m = random_matrix(17, 11);
        let topk = TopKCandidates::build(&m, 3);
        for v in 0..17 {
            assert_eq!(topk.row_sums()[v].to_bits(), m.row_sum(v).to_bits());
        }
        assert_eq!(topk.top_rows_by_sum(4), m.top_rows_by_sum(4));
    }

    #[test]
    fn missing_pairs_sort_after_both_thresholds() {
        let m = random_matrix(24, 5);
        let topk = TopKCandidates::build(&m, 4);
        for i in 0..24 {
            for j in (i + 1)..24 {
                let w = m.get(i, j);
                let in_i = topk.neighbors(i).iter().any(|&(o, _)| o as usize == j);
                let in_j = topk.neighbors(j).iter().any(|&(o, _)| o as usize == i);
                assert_eq!(topk.in_pool(i, j, w), in_i || in_j, "pair ({i},{j})");
                if !in_i && !in_j {
                    for v in [i, j] {
                        let (kw, ki, kj) = topk.kth_key(v).unwrap();
                        assert_eq!(
                            emission_cmp(w, (i as u32, j as u32), kw, (ki, kj)),
                            Ordering::Greater,
                            "missing pair must sort strictly after kth({v})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pool_pairs_sorted_and_distinct() {
        let m = random_matrix(18, 13);
        let topk = TopKCandidates::build(&m, 4);
        let pool = topk.pool_pairs();
        for w in pool.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert_ne!(a, b);
            assert_eq!(
                emission_cmp(
                    m.get(a.0 as usize, a.1 as usize),
                    a,
                    m.get(b.0 as usize, b.1 as usize),
                    b
                ),
                Ordering::Less
            );
        }
        let brute: usize = (0..18)
            .flat_map(|i| (i + 1..18).map(move |j| (i, j)))
            .filter(|&(i, j)| topk.in_pool(i, j, m.get(i, j)))
            .count();
        assert_eq!(pool.len(), brute);
    }

    #[test]
    fn nan_entry_matches_dense_scan() {
        let mut m = random_matrix(10, 21);
        m.set(3, 7, f64::NAN);
        m.set(2, 9, f64::NAN);
        let topk = TopKCandidates::build(&m, 3);
        assert_eq!(topk.nan_entry(), Some((2, 9)));
        assert_eq!(topk.nan_entry(), m.find_nan());
    }

    #[test]
    fn dissimilarity_view_matches_map() {
        let m = random_matrix(9, 17);
        let d = m.map(|p| (2.0 * (1.0 - p)).max(0.0).sqrt());
        let view = DissimilarityView::new(&m);
        assert_eq!(view.num_vertices(), 9);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(view.pair(i, j).to_bits(), d.get(i, j).to_bits());
            }
        }
    }
}
