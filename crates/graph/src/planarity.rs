//! Planarity testing via the left–right (LR) criterion, on a dense,
//! scratch-reusing core built for hot loops.
//!
//! The PMFG (§II of the paper) adds the heaviest remaining edge iff the
//! graph stays planar, which means a planarity test per candidate edge —
//! thousands of tests against graphs that differ by a single edge. The
//! round-based parallel PMFG in `pfg_core` additionally runs many such
//! tests concurrently. This module is built for that access pattern:
//!
//! * **Dense indexed state.** Every undirected edge gets an integer id
//!   `0..m`; all per-edge tables of the LR algorithm (`lowpt`, `lowpt2`,
//!   nesting depth, orientation, interval references, …) are flat `Vec`s
//!   indexed by edge id instead of hash maps keyed by vertex pairs.
//! * **Reusable scratch.** All working memory lives in an [`LrScratch`]
//!   arena. Repeated tests on similarly-sized graphs reuse the same
//!   buffers and allocate nothing after warm-up; a fresh graph shape just
//!   grows (or logically shrinks) the buffers.
//! * **Borrowed one-extra-edge view.** Speculative tests ("would `G + e`
//!   still be planar?") run through [`LrScratch::stays_planar_with_edge`],
//!   which overlays the candidate edge on a borrowed graph. The graph is
//!   never cloned or mutated, so many speculative tests can share one
//!   immutable graph — this is what makes the parallel PMFG's batch phase
//!   safe and cheap.
//! * **Iterative DFS.** Both passes run on explicit stacks held in the
//!   scratch, so deep planar graphs (paths, filtered graphs on large `n`)
//!   cannot overflow the call stack.
//!
//! The algorithm itself is the left–right planarity criterion of
//! de Fraysseix and Rosenstiehl in the formulation of Brandes ("The
//! left-right planarity test"), boolean version (no embedding is produced,
//! which is all PMFG needs). It runs two depth-first passes:
//!
//! 1. an *orientation* pass that orients edges away from the DFS roots and
//!    computes `lowpt`, `lowpt2` and a nesting order for the outgoing edges
//!    of each vertex, and
//! 2. a *testing* pass that maintains a stack of conflict pairs of edge
//!    intervals; the graph is planar iff no interval pair ever conflicts on
//!    both sides.

use crate::weighted_graph::WeightedGraph;

/// Sentinel for "no edge" / "no vertex" / "unvisited" in the dense tables.
const NONE: u32 = u32::MAX;

/// An interval of back edges, identified by dense edge ids (`NONE` = empty
/// endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    low: u32,
    high: u32,
}

impl Default for Interval {
    fn default() -> Self {
        Interval {
            low: NONE,
            high: NONE,
        }
    }
}

impl Interval {
    #[inline]
    fn is_empty(&self) -> bool {
        self.low == NONE && self.high == NONE
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct ConflictPair {
    left: Interval,
    right: Interval,
}

impl ConflictPair {
    #[inline]
    fn swap(&mut self) {
        std::mem::swap(&mut self.left, &mut self.right);
    }
}

/// A DFS frame: the vertex and a cursor into its (CSR or ordered)
/// adjacency range.
#[derive(Debug, Clone, Copy)]
struct Frame {
    v: u32,
    idx: u32,
}

/// A borrowed graph plus at most one speculative extra edge.
///
/// The planarity core reads the graph through this view, so testing
/// `G + (u, v)` requires neither cloning `G` nor temporarily inserting the
/// edge — the extra edge only exists inside the scratch's dense tables.
#[derive(Clone, Copy)]
struct ExtraEdgeView<'a> {
    graph: &'a WeightedGraph,
    /// Speculative extra edge, if any. Must not duplicate a graph edge.
    extra: Option<(u32, u32)>,
}

impl<'a> ExtraEdgeView<'a> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.graph.num_edges() + usize::from(self.extra.is_some())
    }
}

/// Reusable working memory for the left–right planarity test.
///
/// One scratch serves any number of tests, on graphs of any shape; buffers
/// are resized (never shrunk) on each call, so a warm scratch performs a
/// test without allocating. A scratch is cheap to create but *not* cheap
/// to warm up, so hot loops should hold one per thread and reuse it —
/// the parallel PMFG keeps one in thread-local storage per pool worker.
///
/// ```
/// use pfg_graph::{LrScratch, WeightedGraph};
///
/// let mut g = WeightedGraph::new(5);
/// for (u, v) in [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3)] {
///     g.add_edge(u, v, 1.0);
/// }
/// let mut scratch = LrScratch::new();
/// assert!(scratch.is_planar(&g));
/// // Speculative test: the graph is borrowed, never cloned or mutated.
/// assert!(scratch.stays_planar_with_edge(&g, 0, 4));
/// assert_eq!(g.num_edges(), 6);
/// ```
#[derive(Debug, Default)]
pub struct LrScratch {
    // CSR adjacency of the viewed graph: vertex v's incident half-edges
    // live in slots xadj[v]..xadj[v+1] of (vadj, eadj).
    xadj: Vec<u32>,
    vadj: Vec<u32>,
    eadj: Vec<u32>,
    /// Per-vertex fill cursor used while building the CSR.
    cursor: Vec<u32>,
    /// Endpoints of each undirected edge (id-indexed).
    ends: Vec<[u32; 2]>,
    // Per-vertex DFS state.
    height: Vec<u32>,
    parent_edge: Vec<u32>,
    // Per-edge DFS state (all id-indexed).
    src: Vec<u32>,
    lowpt: Vec<u32>,
    lowpt2: Vec<u32>,
    nesting: Vec<u32>,
    reference: Vec<u32>,
    lowpt_edge: Vec<u32>,
    stack_bottom: Vec<u32>,
    // Outgoing oriented edges of each vertex, sorted by nesting depth:
    // vertex v's ordered edges are ordered[ord_off[v]..ord_off[v+1]].
    ord_off: Vec<u32>,
    ordered: Vec<u32>,
    // Explicit stacks.
    conflicts: Vec<ConflictPair>,
    dfs: Vec<Frame>,
    roots: Vec<u32>,
}

impl LrScratch {
    /// Creates an empty scratch. Buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if `graph` is planar.
    ///
    /// Graphs with at most 4 vertices are always planar; graphs with more
    /// than `3n − 6` edges are rejected immediately by Euler's bound.
    pub fn is_planar(&mut self, graph: &WeightedGraph) -> bool {
        let n = graph.num_vertices();
        if n <= 4 {
            return true;
        }
        if graph.num_edges() > 3 * n - 6 {
            return false;
        }
        self.run(ExtraEdgeView { graph, extra: None })
    }

    /// Returns `true` if adding edge `(u, v)` to `graph` would keep it
    /// planar. The graph is borrowed — never cloned or mutated — so
    /// concurrent speculative tests can share one `&WeightedGraph`.
    ///
    /// The caller must ensure `u != v` and that `(u, v)` is not already an
    /// edge of `graph` (checked with `debug_assert!`; the PMFG candidate
    /// stream never re-tests a decided edge).
    pub fn stays_planar_with_edge(&mut self, graph: &WeightedGraph, u: usize, v: usize) -> bool {
        debug_assert!(u != v, "self loops are never planar candidates");
        debug_assert!(
            u < graph.num_vertices() && v < graph.num_vertices(),
            "vertex out of range"
        );
        debug_assert!(
            !graph.has_edge(u, v),
            "speculative edge ({u}, {v}) already present"
        );
        let n = graph.num_vertices();
        if n <= 4 {
            return true;
        }
        if graph.num_edges() + 1 > 3 * n - 6 {
            return false;
        }
        self.run(ExtraEdgeView {
            graph,
            extra: Some((u as u32, v as u32)),
        })
    }

    // ---- Setup -----------------------------------------------------------------

    /// Loads the view into the dense tables: CSR adjacency, edge ids, and
    /// cleared per-vertex/per-edge DFS state. `O(n + m)` writes, zero
    /// allocations once the buffers have grown to the view's size.
    fn load(&mut self, view: ExtraEdgeView<'_>) {
        let n = view.num_vertices();
        let m = view.num_edges();
        // Degree counts (extra edge contributes to both endpoints).
        self.xadj.clear();
        self.xadj.resize(n + 1, 0);
        for v in 0..n {
            self.xadj[v + 1] = view.graph.degree(v) as u32;
        }
        if let Some((u, v)) = view.extra {
            self.xadj[u as usize + 1] += 1;
            self.xadj[v as usize + 1] += 1;
        }
        for v in 0..n {
            self.xadj[v + 1] += self.xadj[v];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.xadj[..n]);
        self.vadj.clear();
        self.vadj.resize(2 * m, 0);
        self.eadj.clear();
        self.eadj.resize(2 * m, 0);
        self.ends.clear();
        self.ends.resize(m, [0, 0]);
        let mut next_id = 0u32;
        let mut place = |slf: &mut Self, u: u32, v: u32| {
            let e = next_id;
            next_id += 1;
            slf.ends[e as usize] = [u, v];
            let cu = slf.cursor[u as usize] as usize;
            slf.vadj[cu] = v;
            slf.eadj[cu] = e;
            slf.cursor[u as usize] += 1;
            let cv = slf.cursor[v as usize] as usize;
            slf.vadj[cv] = u;
            slf.eadj[cv] = e;
            slf.cursor[v as usize] += 1;
        };
        for (u, v, _) in view.graph.edges() {
            place(self, u as u32, v as u32);
        }
        if let Some((u, v)) = view.extra {
            place(self, u, v);
        }
        debug_assert_eq!(next_id as usize, m);
        // Per-vertex state.
        self.height.clear();
        self.height.resize(n, NONE);
        self.parent_edge.clear();
        self.parent_edge.resize(n, NONE);
        // Per-edge state.
        self.src.clear();
        self.src.resize(m, NONE);
        self.lowpt.clear();
        self.lowpt.resize(m, 0);
        self.lowpt2.clear();
        self.lowpt2.resize(m, 0);
        self.nesting.clear();
        self.nesting.resize(m, 0);
        self.reference.clear();
        self.reference.resize(m, NONE);
        self.lowpt_edge.clear();
        self.lowpt_edge.resize(m, NONE);
        self.stack_bottom.clear();
        self.stack_bottom.resize(m, 0);
        self.conflicts.clear();
        self.roots.clear();
    }

    /// Directed target of oriented edge `e` (the endpoint that is not its
    /// orientation source).
    #[inline]
    fn dst(&self, e: u32) -> u32 {
        let [a, b] = self.ends[e as usize];
        if self.src[e as usize] == a {
            b
        } else {
            a
        }
    }

    // ---- Phase 1: orientation DFS (iterative) ----------------------------------

    /// Orients every edge away from the DFS roots, computing `lowpt`,
    /// `lowpt2` and the nesting depth of each oriented edge.
    fn orient_all(&mut self) {
        let n = self.height.len();
        for r in 0..n as u32 {
            if self.height[r as usize] != NONE {
                continue;
            }
            self.height[r as usize] = 0;
            self.roots.push(r);
            self.dfs.clear();
            self.dfs.push(Frame {
                v: r,
                idx: self.xadj[r as usize],
            });
            while let Some(&Frame { v, idx }) = self.dfs.last() {
                let end = self.xadj[v as usize + 1];
                let mut idx = idx;
                let mut descended = false;
                while idx < end {
                    let slot = idx as usize;
                    let w = self.vadj[slot];
                    let e = self.eadj[slot];
                    if self.src[e as usize] != NONE {
                        // Already oriented from the other endpoint.
                        idx += 1;
                        continue;
                    }
                    self.src[e as usize] = v;
                    let hv = self.height[v as usize];
                    self.lowpt[e as usize] = hv;
                    self.lowpt2[e as usize] = hv;
                    if self.height[w as usize] == NONE {
                        // Tree edge: descend; `finish_edge(e)` runs when
                        // the child's subtree completes (idx still points
                        // at e so the parent frame can find it again).
                        self.parent_edge[w as usize] = e;
                        self.height[w as usize] = hv + 1;
                        let fi = self.dfs.len() - 1;
                        self.dfs[fi].idx = idx;
                        self.dfs.push(Frame {
                            v: w,
                            idx: self.xadj[w as usize],
                        });
                        descended = true;
                        break;
                    }
                    // Back edge.
                    self.lowpt[e as usize] = self.height[w as usize];
                    self.finish_edge(e, v);
                    idx += 1;
                }
                if descended {
                    continue;
                }
                self.dfs.pop();
                if let Some(&Frame { v: pv, idx: pidx }) = self.dfs.last() {
                    // Post-process the tree edge we descended through.
                    let e = self.eadj[pidx as usize];
                    self.finish_edge(e, pv);
                    let fi = self.dfs.len() - 1;
                    self.dfs[fi].idx = pidx + 1;
                }
            }
        }
    }

    /// Computes the nesting depth of freshly-oriented edge `e` (source `v`)
    /// and folds its lowpoints into `v`'s parent edge.
    fn finish_edge(&mut self, e: u32, v: u32) {
        let ei = e as usize;
        let mut nest = 2 * self.lowpt[ei];
        if self.lowpt2[ei] < self.height[v as usize] {
            nest += 1; // chordal: nest inside
        }
        self.nesting[ei] = nest;
        let pe = self.parent_edge[v as usize];
        if pe != NONE {
            let pi = pe as usize;
            let (lp, lp2) = (self.lowpt[ei], self.lowpt2[ei]);
            let (plp, plp2) = (self.lowpt[pi], self.lowpt2[pi]);
            match lp.cmp(&plp) {
                std::cmp::Ordering::Less => {
                    self.lowpt2[pi] = plp.min(lp2);
                    self.lowpt[pi] = lp;
                }
                std::cmp::Ordering::Greater => {
                    self.lowpt2[pi] = plp2.min(lp);
                }
                std::cmp::Ordering::Equal => {
                    self.lowpt2[pi] = plp2.min(lp2);
                }
            }
        }
    }

    /// Groups the oriented edges by source vertex, sorted by nesting depth
    /// (ties by edge id, so the order is deterministic).
    fn order_adjacency(&mut self) {
        let n = self.height.len();
        self.ordered.clear();
        self.ord_off.clear();
        for v in 0..n {
            self.ord_off.push(self.ordered.len() as u32);
            for slot in self.xadj[v]..self.xadj[v + 1] {
                let e = self.eadj[slot as usize];
                if self.src[e as usize] == v as u32 {
                    self.ordered.push(e);
                }
            }
            let start = self.ord_off[v] as usize;
            let nesting = &self.nesting;
            self.ordered[start..].sort_unstable_by_key(|&e| (nesting[e as usize], e));
        }
        self.ord_off.push(self.ordered.len() as u32);
    }

    // ---- Phase 2: testing DFS (iterative) --------------------------------------

    #[inline]
    fn interval_conflicting(&self, interval: &Interval, b: u32) -> bool {
        interval.high != NONE && self.lowpt[interval.high as usize] > self.lowpt[b as usize]
    }

    fn pair_lowest(&self, pair: &ConflictPair) -> u32 {
        let l = pair.left.low;
        let r = pair.right.low;
        match (l, r) {
            (NONE, NONE) => u32::MAX,
            (NONE, r) => self.lowpt[r as usize],
            (l, NONE) => self.lowpt[l as usize],
            (l, r) => self.lowpt[l as usize].min(self.lowpt[r as usize]),
        }
    }

    /// Runs the testing DFS from root `r`. Returns `false` on a left–right
    /// conflict (the graph is not planar).
    fn test_from(&mut self, r: u32) -> bool {
        self.dfs.clear();
        self.dfs.push(Frame {
            v: r,
            idx: self.ord_off[r as usize],
        });
        let mut returning = false;
        while let Some(&Frame { v, idx }) = self.dfs.last() {
            let mut idx = idx;
            if returning {
                // Just completed the subtree of tree edge ordered[idx].
                let e = self.ordered[idx as usize];
                if !self.integrate(e, v, idx) {
                    return false;
                }
                idx += 1;
                returning = false;
            }
            let end = self.ord_off[v as usize + 1];
            let mut descended = false;
            while idx < end {
                let e = self.ordered[idx as usize];
                self.stack_bottom[e as usize] = self.conflicts.len() as u32;
                let w = self.dst(e);
                if self.parent_edge[w as usize] == e {
                    // Tree edge: descend; `integrate(e)` runs on return.
                    let fi = self.dfs.len() - 1;
                    self.dfs[fi].idx = idx;
                    self.dfs.push(Frame {
                        v: w,
                        idx: self.ord_off[w as usize],
                    });
                    descended = true;
                    break;
                }
                // Back edge: a fresh one-edge interval on the right side.
                self.lowpt_edge[e as usize] = e;
                self.conflicts.push(ConflictPair {
                    left: Interval::default(),
                    right: Interval { low: e, high: e },
                });
                if !self.integrate(e, v, idx) {
                    return false;
                }
                idx += 1;
            }
            if descended {
                continue;
            }
            self.dfs.pop();
            let pe = self.parent_edge[v as usize];
            if pe != NONE {
                self.remove_back_edges(pe);
            }
            returning = true;
        }
        true
    }

    /// Integrates the return edges of `e` (the `idx`-th ordered edge of
    /// `v`) into the conflict stack: the first outgoing edge just forwards
    /// its lowpoint edge to the parent, later siblings must merge without
    /// a both-sides conflict.
    fn integrate(&mut self, e: u32, v: u32, idx: u32) -> bool {
        if self.lowpt[e as usize] < self.height[v as usize] {
            let pe = self.parent_edge[v as usize];
            if idx == self.ord_off[v as usize] {
                if pe != NONE {
                    self.lowpt_edge[pe as usize] = self.lowpt_edge[e as usize];
                }
            } else if !self.add_constraints(e, pe) {
                return false;
            }
        }
        true
    }

    fn add_constraints(&mut self, ei: u32, e: u32) -> bool {
        if e == NONE {
            return true;
        }
        let bottom = self.stack_bottom[ei as usize] as usize;
        let mut p = ConflictPair::default();
        // Merge return edges of ei into p.right.
        while self.conflicts.len() > bottom {
            let mut q = self.conflicts.pop().expect("len > bottom");
            if !q.left.is_empty() {
                q.swap();
            }
            if !q.left.is_empty() {
                return false; // not planar
            }
            let q_r_low = q.right.low;
            debug_assert_ne!(q_r_low, NONE, "right interval must be non-empty");
            if self.lowpt[q_r_low as usize] > self.lowpt[e as usize] {
                // Merge intervals.
                if p.right.is_empty() {
                    p.right.high = q.right.high;
                } else {
                    self.reference[p.right.low as usize] = q.right.high;
                }
                p.right.low = q.right.low;
            } else {
                // Align.
                self.reference[q_r_low as usize] = self.lowpt_edge[e as usize];
            }
        }
        // Merge conflicting return edges of previous sibling edges into p.left.
        loop {
            let conflicts = match self.conflicts.last() {
                Some(top) => {
                    self.interval_conflicting(&top.left, ei)
                        || self.interval_conflicting(&top.right, ei)
                }
                None => false,
            };
            if !conflicts {
                break;
            }
            let mut q = self.conflicts.pop().expect("checked non-empty");
            if self.interval_conflicting(&q.right, ei) {
                q.swap();
            }
            if self.interval_conflicting(&q.right, ei) {
                return false; // not planar
            }
            // Merge the interval below lowpt(ei) into p.right.
            if p.right.low != NONE {
                self.reference[p.right.low as usize] = q.right.high;
            }
            if q.right.low != NONE {
                p.right.low = q.right.low;
            }
            if p.left.is_empty() {
                p.left.high = q.left.high;
            } else {
                self.reference[p.left.low as usize] = q.left.high;
            }
            p.left.low = q.left.low;
        }
        if !(p.left.is_empty() && p.right.is_empty()) {
            self.conflicts.push(p);
        }
        true
    }

    fn remove_back_edges(&mut self, e: u32) {
        let u = self.src[e as usize];
        let hu = self.height[u as usize];
        // Drop entire conflict pairs whose lowest return point is at height[u].
        while let Some(top) = self.conflicts.last() {
            if self.pair_lowest(top) == hu {
                self.conflicts.pop();
            } else {
                break;
            }
        }
        // Trim one more conflict pair.
        if let Some(mut p) = self.conflicts.pop() {
            // Trim the left interval.
            while p.left.high != NONE && self.dst(p.left.high) == u {
                p.left.high = self.reference[p.left.high as usize];
            }
            if p.left.high == NONE && p.left.low != NONE {
                self.reference[p.left.low as usize] = p.right.low;
                p.left.low = NONE;
            }
            // Trim the right interval.
            while p.right.high != NONE && self.dst(p.right.high) == u {
                p.right.high = self.reference[p.right.high as usize];
            }
            if p.right.high == NONE && p.right.low != NONE {
                self.reference[p.right.low as usize] = p.left.low;
                p.right.low = NONE;
            }
            self.conflicts.push(p);
        }
        // The side of e is the side of a highest return edge.
        if self.lowpt[e as usize] < hu {
            if let Some(top) = self.conflicts.last() {
                let hl = top.left.high;
                let hr = top.right.high;
                let chosen = if hl != NONE
                    && (hr == NONE || self.lowpt[hl as usize] > self.lowpt[hr as usize])
                {
                    hl
                } else {
                    hr
                };
                self.reference[e as usize] = chosen;
            }
        }
    }

    /// Full test on a loaded view: orientation, adjacency ordering, then
    /// the testing DFS from every root.
    fn run(&mut self, view: ExtraEdgeView<'_>) -> bool {
        self.load(view);
        self.orient_all();
        self.order_adjacency();
        for i in 0..self.roots.len() {
            let r = self.roots[i];
            if !self.test_from(r) {
                return false;
            }
        }
        true
    }
}

/// Returns `true` if `graph` is planar.
///
/// One-shot convenience over [`LrScratch::is_planar`]; allocates a fresh
/// scratch per call. Hot loops should hold an [`LrScratch`] instead.
pub fn is_planar(graph: &WeightedGraph) -> bool {
    LrScratch::new().is_planar(graph)
}

/// Returns `true` if adding edge `(u, v)` to `graph` would keep it planar.
/// The graph is borrowed and never modified (or cloned).
///
/// One-shot convenience over [`LrScratch::stays_planar_with_edge`].
pub fn stays_planar_with_edge(graph: &WeightedGraph, u: usize, v: usize) -> bool {
    LrScratch::new().stays_planar_with_edge(graph, u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph(n: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v, 1.0);
            }
        }
        g
    }

    fn complete_bipartite(a: usize, b: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(a + b);
        for u in 0..a {
            for v in 0..b {
                g.add_edge(u, a + v, 1.0);
            }
        }
        g
    }

    /// Builds a maximal planar graph on `n >= 4` vertices the TMFG way:
    /// start from K4 and repeatedly insert a vertex into a triangular face.
    fn triangulation(n: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(n);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 1.0);
            }
        }
        let mut faces = vec![(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)];
        for v in 4..n {
            let pos = v % faces.len();
            let (a, b, c) = faces[pos];
            g.add_edge(v, a, 1.0);
            g.add_edge(v, b, 1.0);
            g.add_edge(v, c, 1.0);
            faces.swap_remove(pos);
            faces.push((v, a, b));
            faces.push((v, b, c));
            faces.push((v, a, c));
        }
        g
    }

    /// Subdivides every edge of `g` once (replaces `(u, v)` with
    /// `(u, x), (x, v)` through a fresh vertex `x`). Subdivision preserves
    /// (non-)planarity.
    fn subdivide(g: &WeightedGraph) -> WeightedGraph {
        let n = g.num_vertices();
        let mut out = WeightedGraph::new(n + g.num_edges());
        for (next, (u, v, w)) in (n..).zip(g.edges()) {
            out.add_edge(u, next, w);
            out.add_edge(next, v, w);
        }
        out
    }

    #[test]
    fn small_graphs_are_planar() {
        assert!(is_planar(&WeightedGraph::new(0)));
        assert!(is_planar(&WeightedGraph::new(1)));
        assert!(is_planar(&complete_graph(3)));
        assert!(is_planar(&complete_graph(4)));
    }

    #[test]
    fn k5_is_not_planar() {
        assert!(!is_planar(&complete_graph(5)));
    }

    #[test]
    fn k6_is_not_planar() {
        assert!(!is_planar(&complete_graph(6)));
    }

    #[test]
    fn k33_is_not_planar() {
        assert!(!is_planar(&complete_bipartite(3, 3)));
    }

    #[test]
    fn k23_is_planar() {
        assert!(is_planar(&complete_bipartite(2, 3)));
    }

    #[test]
    fn k24_is_planar() {
        assert!(is_planar(&complete_bipartite(2, 4)));
    }

    #[test]
    fn k5_and_k33_subdivisions_are_not_planar() {
        // Kuratowski subdivisions have the original (non-)planarity but a
        // sparse edge count, so Euler's bound cannot short-circuit them —
        // the LR passes themselves must find the conflict.
        let k5_sub = subdivide(&complete_graph(5));
        assert!(k5_sub.num_edges() <= 3 * k5_sub.num_vertices() - 6);
        assert!(!is_planar(&k5_sub));
        let k33_sub = subdivide(&complete_bipartite(3, 3));
        assert!(!is_planar(&k33_sub));
        // A double subdivision is still a K5 subdivision.
        assert!(!is_planar(&subdivide(&k5_sub)));
        // Subdividing a planar graph keeps it planar.
        assert!(is_planar(&subdivide(&triangulation(12))));
    }

    #[test]
    fn trees_and_cycles_are_planar() {
        let mut path = WeightedGraph::new(10);
        for i in 0..9 {
            path.add_edge(i, i + 1, 1.0);
        }
        assert!(is_planar(&path));
        let mut cycle = WeightedGraph::new(10);
        for i in 0..10 {
            cycle.add_edge(i, (i + 1) % 10, 1.0);
        }
        assert!(is_planar(&cycle));
    }

    #[test]
    fn deep_path_does_not_overflow_the_stack() {
        // The DFS passes run on explicit stacks; a 200k-vertex path would
        // overflow the call stack under the old recursive implementation.
        let n = 200_000;
        let mut path = WeightedGraph::new(n);
        for i in 0..n - 1 {
            path.add_edge(i, i + 1, 1.0);
        }
        assert!(is_planar(&path));
        // Closing the long cycle keeps it planar; a chord also keeps it
        // planar; both at once still planar (outerplanar + one chord).
        let mut scratch = LrScratch::new();
        assert!(scratch.stays_planar_with_edge(&path, 0, n - 1));
    }

    #[test]
    fn planar_grid_is_planar() {
        let side = 5;
        let mut g = WeightedGraph::new(side * side);
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    g.add_edge(v, v + 1, 1.0);
                }
                if r + 1 < side {
                    g.add_edge(v, v + side, 1.0);
                }
            }
        }
        assert!(is_planar(&g));
    }

    #[test]
    fn k5_minus_an_edge_is_planar() {
        let mut g = WeightedGraph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                if !(u == 0 && v == 1) {
                    g.add_edge(u, v, 1.0);
                }
            }
        }
        assert!(is_planar(&g));
    }

    #[test]
    fn petersen_graph_is_not_planar() {
        // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
        let mut g = WeightedGraph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5, 1.0);
            g.add_edge(5 + i, 5 + (i + 2) % 5, 1.0);
            g.add_edge(i, i + 5, 1.0);
        }
        assert!(!is_planar(&g));
    }

    #[test]
    fn disconnected_planar_components() {
        let mut g = WeightedGraph::new(8);
        for base in [0, 4] {
            for u in 0..4 {
                for v in (u + 1)..4 {
                    g.add_edge(base + u, base + v, 1.0);
                }
            }
        }
        assert!(is_planar(&g));
    }

    #[test]
    fn disconnected_with_one_nonplanar_component() {
        let mut g = WeightedGraph::new(8);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v, 1.0);
            }
        }
        assert!(!is_planar(&g));
    }

    #[test]
    fn triangulations_are_planar() {
        for n in [5, 10, 30, 80] {
            let g = triangulation(n);
            assert_eq!(g.num_edges(), 3 * n - 6);
            assert!(
                is_planar(&g),
                "triangulation on {n} vertices must be planar"
            );
        }
    }

    #[test]
    fn triangulation_plus_any_edge_is_not_planar() {
        let n = 30;
        let g = triangulation(n);
        // A maximal planar graph cannot accept any additional edge.
        let mut scratch = LrScratch::new();
        let mut checked = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) {
                    assert!(!scratch.stays_planar_with_edge(&g, u, v));
                    checked += 1;
                    if checked > 20 {
                        return; // enough samples; keep the test fast
                    }
                }
            }
        }
    }

    #[test]
    fn euler_bound_rejects_dense_graphs_fast() {
        let g = complete_graph(12);
        assert!(!is_planar(&g));
    }

    #[test]
    fn stays_planar_helper_does_not_mutate() {
        let mut h = WeightedGraph::new(5);
        h.add_edge(0, 1, 1.0);
        assert!(stays_planar_with_edge(&h, 2, 3));
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn one_scratch_serves_differently_shaped_graphs() {
        // Reuse a single scratch across graphs of wildly different sizes
        // and planarity; every answer must match a fresh scratch's.
        let mut scratch = LrScratch::new();
        let shapes: Vec<(WeightedGraph, bool)> = vec![
            (triangulation(80), true),
            (complete_graph(5), false),
            (WeightedGraph::new(0), true),
            (complete_bipartite(3, 3), false),
            (triangulation(7), true),
            (subdivide(&complete_graph(5)), false),
            (WeightedGraph::new(3), true),
            (complete_bipartite(2, 9), true),
        ];
        for _ in 0..3 {
            for (g, planar) in &shapes {
                assert_eq!(scratch.is_planar(g), *planar);
                assert_eq!(LrScratch::new().is_planar(g), *planar);
            }
        }
    }

    #[test]
    fn scratch_speculative_tests_agree_with_committed_tests() {
        // For every non-edge of several graphs, the borrowed-view result
        // must equal the result of really inserting the edge.
        let graphs = [triangulation(9), complete_bipartite(2, 5), {
            let mut p = WeightedGraph::new(8);
            for i in 0..7 {
                p.add_edge(i, i + 1, 1.0);
            }
            p
        }];
        let mut scratch = LrScratch::new();
        for g in &graphs {
            let n = g.num_vertices();
            for u in 0..n {
                for v in (u + 1)..n {
                    if g.has_edge(u, v) {
                        continue;
                    }
                    let speculative = scratch.stays_planar_with_edge(g, u, v);
                    let mut committed = g.clone();
                    committed.add_edge(u, v, 1.0);
                    assert_eq!(
                        speculative,
                        is_planar(&committed),
                        "edge ({u}, {v}) on n={n}"
                    );
                }
            }
        }
    }
}
