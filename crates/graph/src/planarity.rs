//! Planarity testing via the left–right (LR) criterion.
//!
//! The PMFG baseline (§II of the paper) repeatedly adds the heaviest
//! remaining edge if and only if the graph stays planar, which requires a
//! planarity test after every tentative insertion. We implement the
//! left–right planarity algorithm of de Fraysseix and Rosenstiehl in the
//! formulation of Brandes ("The left-right planarity test"), boolean
//! version (no embedding is produced, which is all PMFG needs).
//!
//! The algorithm runs two depth-first passes:
//!
//! 1. an *orientation* pass that orients edges away from the DFS roots and
//!    computes `lowpt`, `lowpt2` and a nesting order for the outgoing edges
//!    of each vertex, and
//! 2. a *testing* pass that maintains a stack of conflict pairs of edge
//!    intervals; the graph is planar iff no interval pair ever conflicts on
//!    both sides.

use crate::weighted_graph::WeightedGraph;
use std::collections::HashMap;

/// A directed half-edge `(from, to)`.
type Edge = (usize, usize);

const UNVISITED: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Interval {
    low: Option<Edge>,
    high: Option<Edge>,
}

impl Interval {
    fn is_empty(&self) -> bool {
        self.low.is_none() && self.high.is_none()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct ConflictPair {
    left: Interval,
    right: Interval,
}

impl ConflictPair {
    fn swap(&mut self) {
        std::mem::swap(&mut self.left, &mut self.right);
    }
}

struct LrState {
    adj: Vec<Vec<usize>>,
    height: Vec<usize>,
    parent_edge: Vec<Option<Edge>>,
    lowpt: HashMap<Edge, usize>,
    lowpt2: HashMap<Edge, usize>,
    nesting_depth: HashMap<Edge, i64>,
    oriented: HashMap<Edge, ()>,
    ordered_adjs: Vec<Vec<usize>>,
    reference: HashMap<Edge, Option<Edge>>,
    lowpt_edge: HashMap<Edge, Edge>,
    stack: Vec<ConflictPair>,
    stack_bottom: HashMap<Edge, usize>,
}

impl LrState {
    fn new(graph: &WeightedGraph) -> Self {
        let n = graph.num_vertices();
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|u| graph.neighbors(u).iter().map(|&(v, _)| v).collect())
            .collect();
        Self {
            adj,
            height: vec![UNVISITED; n],
            parent_edge: vec![None; n],
            lowpt: HashMap::new(),
            lowpt2: HashMap::new(),
            nesting_depth: HashMap::new(),
            oriented: HashMap::new(),
            ordered_adjs: vec![Vec::new(); n],
            reference: HashMap::new(),
            lowpt_edge: HashMap::new(),
            stack: Vec::new(),
            stack_bottom: HashMap::new(),
        }
    }

    #[inline]
    fn lowpt_of(&self, e: Edge) -> usize {
        self.lowpt[&e]
    }

    // ---- Phase 1: orientation DFS ------------------------------------------------

    fn dfs_orientation(&mut self, v: usize) {
        let e = self.parent_edge[v];
        let neighbors = self.adj[v].clone();
        for w in neighbors {
            let vw: Edge = (v, w);
            if self.oriented.contains_key(&vw) || self.oriented.contains_key(&(w, v)) {
                continue;
            }
            self.oriented.insert(vw, ());
            self.lowpt.insert(vw, self.height[v]);
            self.lowpt2.insert(vw, self.height[v]);
            if self.height[w] == UNVISITED {
                // tree edge
                self.parent_edge[w] = Some(vw);
                self.height[w] = self.height[v] + 1;
                self.dfs_orientation(w);
            } else {
                // back edge
                self.lowpt.insert(vw, self.height[w]);
            }
            // determine nesting depth
            let mut nesting = 2 * self.lowpt[&vw] as i64;
            if self.lowpt2[&vw] < self.height[v] {
                nesting += 1; // chordal: nest inside
            }
            self.nesting_depth.insert(vw, nesting);
            // fold lowpoints into parent edge e
            if let Some(e) = e {
                let (lp_vw, lp2_vw) = (self.lowpt[&vw], self.lowpt2[&vw]);
                let (lp_e, lp2_e) = (self.lowpt[&e], self.lowpt2[&e]);
                if lp_vw < lp_e {
                    self.lowpt2.insert(e, lp_e.min(lp2_vw));
                    self.lowpt.insert(e, lp_vw);
                } else if lp_vw > lp_e {
                    self.lowpt2.insert(e, lp2_e.min(lp_vw));
                } else {
                    self.lowpt2.insert(e, lp2_e.min(lp2_vw));
                }
            }
        }
    }

    // ---- Phase 2: testing DFS ----------------------------------------------------

    fn interval_conflicting(&self, interval: &Interval, b: Edge) -> bool {
        match interval.high {
            None => false,
            Some(high) => self.lowpt_of(high) > self.lowpt_of(b),
        }
    }

    fn pair_lowest(&self, pair: &ConflictPair) -> usize {
        match (pair.left.low, pair.right.low) {
            (None, Some(r)) => self.lowpt_of(r),
            (Some(l), None) => self.lowpt_of(l),
            (Some(l), Some(r)) => self.lowpt_of(l).min(self.lowpt_of(r)),
            (None, None) => usize::MAX,
        }
    }

    fn dfs_testing(&mut self, v: usize) -> bool {
        let e = self.parent_edge[v];
        let ordered = self.ordered_adjs[v].clone();
        for (i, &w) in ordered.iter().enumerate() {
            let ei: Edge = (v, w);
            self.stack_bottom.insert(ei, self.stack.len());
            if Some(ei) == self.parent_edge[w] {
                // tree edge: recurse
                if !self.dfs_testing(w) {
                    return false;
                }
            } else {
                // back edge
                self.lowpt_edge.insert(ei, ei);
                self.stack.push(ConflictPair {
                    left: Interval::default(),
                    right: Interval {
                        low: Some(ei),
                        high: Some(ei),
                    },
                });
            }
            // integrate new return edges
            if self.lowpt[&ei] < self.height[v] {
                if i == 0 {
                    if let Some(e) = e {
                        let le = self.lowpt_edge[&ei];
                        self.lowpt_edge.insert(e, le);
                    }
                } else if !self.add_constraints(ei, e) {
                    return false;
                }
            }
        }
        // remove back edges returning to the parent
        if let Some(e) = e {
            self.remove_back_edges(e);
        }
        true
    }

    fn add_constraints(&mut self, ei: Edge, e: Option<Edge>) -> bool {
        let e = match e {
            Some(e) => e,
            None => return true,
        };
        let bottom = *self.stack_bottom.get(&ei).unwrap_or(&0);
        let mut p = ConflictPair::default();
        // merge return edges of ei into p.right
        while let Some(mut q) = self.stack.pop() {
            if !q.left.is_empty() {
                q.swap();
            }
            if !q.left.is_empty() {
                return false; // not planar
            }
            let q_r_low = q.right.low.expect("right interval must be non-empty");
            if self.lowpt_of(q_r_low) > self.lowpt_of(e) {
                // merge intervals
                if p.right.is_empty() {
                    p.right.high = q.right.high;
                } else {
                    let p_r_low = p.right.low.expect("non-empty interval has low");
                    self.reference.insert(p_r_low, q.right.high);
                }
                p.right.low = q.right.low;
            } else {
                // align
                self.reference.insert(q_r_low, Some(self.lowpt_edge[&e]));
            }
            if self.stack.len() == bottom {
                break;
            }
        }
        // merge conflicting return edges of previous sibling edges into p.left
        loop {
            let conflicts = match self.stack.last() {
                Some(top) => {
                    self.interval_conflicting(&top.left, ei)
                        || self.interval_conflicting(&top.right, ei)
                }
                None => false,
            };
            if !conflicts {
                break;
            }
            let mut q = self.stack.pop().expect("checked non-empty");
            if self.interval_conflicting(&q.right, ei) {
                q.swap();
            }
            if self.interval_conflicting(&q.right, ei) {
                return false; // not planar
            }
            // merge interval below lowpt(ei) into p.right
            if let Some(p_r_low) = p.right.low {
                self.reference.insert(p_r_low, q.right.high);
            }
            if q.right.low.is_some() {
                p.right.low = q.right.low;
            }
            if p.left.is_empty() {
                p.left.high = q.left.high;
            } else {
                let p_l_low = p.left.low.expect("non-empty interval has low");
                self.reference.insert(p_l_low, q.left.high);
            }
            p.left.low = q.left.low;
        }
        if !(p.left.is_empty() && p.right.is_empty()) {
            self.stack.push(p);
        }
        true
    }

    fn remove_back_edges(&mut self, e: Edge) {
        let u = e.0;
        // drop entire conflict pairs whose lowest return point is at height[u]
        while let Some(top) = self.stack.last() {
            if self.pair_lowest(top) == self.height[u] {
                self.stack.pop();
            } else {
                break;
            }
        }
        // trim one more conflict pair
        if let Some(mut p) = self.stack.pop() {
            // trim left interval
            while let Some(high) = p.left.high {
                if high.1 == u {
                    p.left.high = self.reference.get(&high).copied().flatten();
                } else {
                    break;
                }
            }
            if p.left.high.is_none() && p.left.low.is_some() {
                let low = p.left.low.expect("checked");
                self.reference.insert(low, p.right.low);
                p.left.low = None;
            }
            // trim right interval
            while let Some(high) = p.right.high {
                if high.1 == u {
                    p.right.high = self.reference.get(&high).copied().flatten();
                } else {
                    break;
                }
            }
            if p.right.high.is_none() && p.right.low.is_some() {
                let low = p.right.low.expect("checked");
                self.reference.insert(low, p.left.low);
                p.right.low = None;
            }
            self.stack.push(p);
        }
        // side of e is the side of a highest return edge
        if self.lowpt[&e] < self.height[u] {
            if let Some(top) = self.stack.last() {
                let hl = top.left.high;
                let hr = top.right.high;
                let chosen = match (hl, hr) {
                    (Some(l), Some(r)) => {
                        if self.lowpt_of(l) > self.lowpt_of(r) {
                            Some(l)
                        } else {
                            Some(r)
                        }
                    }
                    (Some(l), None) => Some(l),
                    (_, r) => r,
                };
                self.reference.insert(e, chosen);
            }
        }
    }

    fn run(mut self) -> bool {
        let n = self.adj.len();
        // Phase 1: orientation from every root
        let mut roots = Vec::new();
        for v in 0..n {
            if self.height[v] == UNVISITED {
                self.height[v] = 0;
                roots.push(v);
                self.dfs_orientation(v);
            }
        }
        // Order adjacency lists by nesting depth (outgoing oriented edges only)
        for v in 0..n {
            let mut outgoing: Vec<usize> = self.adj[v]
                .iter()
                .copied()
                .filter(|&w| self.oriented.contains_key(&(v, w)))
                .collect();
            outgoing.sort_by_key(|&w| self.nesting_depth[&(v, w)]);
            self.ordered_adjs[v] = outgoing;
        }
        // Phase 2: testing from every root
        for v in roots {
            if !self.dfs_testing(v) {
                return false;
            }
        }
        true
    }
}

/// Returns `true` if `graph` is planar.
///
/// Runs the left–right planarity criterion. Graphs with at most 4 vertices
/// are always planar; graphs with more than `3n − 6` edges are rejected
/// immediately by Euler's bound.
pub fn is_planar(graph: &WeightedGraph) -> bool {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    if n <= 4 {
        return true;
    }
    if m > 3 * n - 6 {
        return false;
    }
    LrState::new(graph).run()
}

/// Returns `true` if adding edge `(u, v)` to `graph` would keep it planar.
/// The graph itself is not modified.
pub fn stays_planar_with_edge(graph: &WeightedGraph, u: usize, v: usize) -> bool {
    let mut candidate = graph.clone();
    candidate.add_edge(u, v, 1.0);
    is_planar(&candidate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph(n: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v, 1.0);
            }
        }
        g
    }

    fn complete_bipartite(a: usize, b: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(a + b);
        for u in 0..a {
            for v in 0..b {
                g.add_edge(u, a + v, 1.0);
            }
        }
        g
    }

    /// Builds a maximal planar graph on `n >= 4` vertices the TMFG way:
    /// start from K4 and repeatedly insert a vertex into a triangular face.
    fn triangulation(n: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(n);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 1.0);
            }
        }
        let mut faces = vec![(0, 1, 2), (0, 1, 3), (0, 2, 3), (1, 2, 3)];
        for v in 4..n {
            let pos = v % faces.len();
            let (a, b, c) = faces[pos];
            g.add_edge(v, a, 1.0);
            g.add_edge(v, b, 1.0);
            g.add_edge(v, c, 1.0);
            faces.swap_remove(pos);
            faces.push((v, a, b));
            faces.push((v, b, c));
            faces.push((v, a, c));
        }
        g
    }

    #[test]
    fn small_graphs_are_planar() {
        assert!(is_planar(&WeightedGraph::new(0)));
        assert!(is_planar(&WeightedGraph::new(1)));
        assert!(is_planar(&complete_graph(3)));
        assert!(is_planar(&complete_graph(4)));
    }

    #[test]
    fn k5_is_not_planar() {
        assert!(!is_planar(&complete_graph(5)));
    }

    #[test]
    fn k6_is_not_planar() {
        assert!(!is_planar(&complete_graph(6)));
    }

    #[test]
    fn k33_is_not_planar() {
        assert!(!is_planar(&complete_bipartite(3, 3)));
    }

    #[test]
    fn k23_is_planar() {
        assert!(is_planar(&complete_bipartite(2, 3)));
    }

    #[test]
    fn k24_is_planar() {
        assert!(is_planar(&complete_bipartite(2, 4)));
    }

    #[test]
    fn trees_and_cycles_are_planar() {
        let mut path = WeightedGraph::new(10);
        for i in 0..9 {
            path.add_edge(i, i + 1, 1.0);
        }
        assert!(is_planar(&path));
        let mut cycle = WeightedGraph::new(10);
        for i in 0..10 {
            cycle.add_edge(i, (i + 1) % 10, 1.0);
        }
        assert!(is_planar(&cycle));
    }

    #[test]
    fn planar_grid_is_planar() {
        let side = 5;
        let mut g = WeightedGraph::new(side * side);
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    g.add_edge(v, v + 1, 1.0);
                }
                if r + 1 < side {
                    g.add_edge(v, v + side, 1.0);
                }
            }
        }
        assert!(is_planar(&g));
    }

    #[test]
    fn k5_minus_an_edge_is_planar() {
        let mut g = WeightedGraph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                if !(u == 0 && v == 1) {
                    g.add_edge(u, v, 1.0);
                }
            }
        }
        assert!(is_planar(&g));
    }

    #[test]
    fn petersen_graph_is_not_planar() {
        // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
        let mut g = WeightedGraph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5, 1.0);
            g.add_edge(5 + i, 5 + (i + 2) % 5, 1.0);
            g.add_edge(i, i + 5, 1.0);
        }
        assert!(!is_planar(&g));
    }

    #[test]
    fn disconnected_planar_components() {
        let mut g = WeightedGraph::new(8);
        for base in [0, 4] {
            for u in 0..4 {
                for v in (u + 1)..4 {
                    g.add_edge(base + u, base + v, 1.0);
                }
            }
        }
        assert!(is_planar(&g));
    }

    #[test]
    fn disconnected_with_one_nonplanar_component() {
        let mut g = WeightedGraph::new(8);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v, 1.0);
            }
        }
        assert!(!is_planar(&g));
    }

    #[test]
    fn triangulations_are_planar() {
        for n in [5, 10, 30, 80] {
            let g = triangulation(n);
            assert_eq!(g.num_edges(), 3 * n - 6);
            assert!(
                is_planar(&g),
                "triangulation on {n} vertices must be planar"
            );
        }
    }

    #[test]
    fn triangulation_plus_any_edge_is_not_planar() {
        let n = 30;
        let g = triangulation(n);
        // A maximal planar graph cannot accept any additional edge.
        let mut checked = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) {
                    assert!(!stays_planar_with_edge(&g, u, v));
                    checked += 1;
                    if checked > 20 {
                        return; // enough samples; keep the test fast
                    }
                }
            }
        }
    }

    #[test]
    fn euler_bound_rejects_dense_graphs_fast() {
        let g = complete_graph(12);
        assert!(!is_planar(&g));
    }

    #[test]
    fn stays_planar_helper_does_not_mutate() {
        let mut h = WeightedGraph::new(5);
        h.add_edge(0, 1, 1.0);
        assert!(stays_planar_with_edge(&h, 2, 3));
        assert_eq!(h.num_edges(), 1);
    }
}
