//! Dijkstra single-source shortest paths, parallel all-pairs shortest
//! paths, and demand-driven restricted shortest paths over the sparse
//! filtered graphs.
//!
//! APSP over the dissimilarity-weighted TMFG is the dominant cost of the
//! DBHT (§VI): the paper runs Dijkstra from every source in parallel, which
//! is exactly what [`all_pairs_shortest_paths`] does — every source's
//! distance row is written *directly into the result matrix's own row*
//! (`par_chunks_mut` hands each task a disjoint row), and the matrix is
//! then symmetrised in place, also in parallel. Peak memory is one `n²`
//! buffer plus per-source Dijkstra scratch; the previous implementation
//! materialised per-source row `Vec`s, copied them into an `n²` flat
//! buffer, and symmetrised into a third `n²` allocation (~3n² peak), which
//! was the memory high-water mark of the whole DBHT pipeline. Row tasks
//! are uneven on irregular graphs; the executor's work stealing keeps one
//! expensive source from gating the round.
//!
//! The DBHT, however, never reads most of those `n²` entries: the
//! hierarchy consumes distances *within* each first-level group plus a
//! handful of rows anchored at the converging bubbles. The demand-driven
//! pair — [`shortest_path_rows`] (full rows for a chosen source set) and
//! [`group_restricted_shortest_paths`] (per-group dense blocks via
//! Dijkstras that stop as soon as the whole group is settled) — computes
//! exactly those distances, cutting the output from `n²` to
//! `O(Σ group² + |sources|·n)` and the work from `n` full Dijkstras to
//! mostly-early-terminated ones.

use crate::matrix::SymmetricMatrix;
use crate::weighted_graph::WeightedGraph;
use pfg_primitives::{DisjointWriteAudit, SendPtr};
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry: (distance, vertex).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) pops the smallest
        // distance. total_cmp keeps this a strict total order even if a
        // NaN weight ever slips in (partial_cmp would report Equal for
        // NaN-vs-anything, breaking transitivity).
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest-path distances from `source` using edge weights as
/// (non-negative) lengths. Unreachable vertices get `f64::INFINITY`.
///
/// # Panics
/// Debug-asserts that edge weights are non-negative.
pub fn dijkstra(graph: &WeightedGraph, source: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; graph.num_vertices()];
    dijkstra_into(graph, source, &mut dist);
    dist
}

/// [`dijkstra`] writing into a caller-provided row of length
/// `num_vertices` (every entry is overwritten), so all-pairs callers can
/// fill one flat matrix without a per-source allocation.
fn dijkstra_into(graph: &WeightedGraph, source: usize, dist: &mut [f64]) {
    let n = graph.num_vertices();
    debug_assert_eq!(dist.len(), n);
    dist.fill(f64::INFINITY);
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for &(v, w) in graph.neighbors(u) {
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let candidate = d + w;
            if candidate < dist[v] {
                dist[v] = candidate;
                heap.push(HeapEntry {
                    dist: candidate,
                    vertex: v,
                });
            }
        }
    }
}

/// Read access to pairwise distances, implemented both by the dense
/// [`SymmetricMatrix`] APSP output and by the restricted (demand-driven)
/// stores, so distance consumers can run on either.
///
/// Implementations must be symmetric (`pair(u, v) == pair(v, u)`) and
/// return `0.0` on the diagonal, but may panic for pairs outside their
/// computed demand set — that panic is the contract check that a consumer
/// really only reads what it declared.
pub trait PairDistances {
    /// Shortest-path distance between `u` and `v`.
    fn pair(&self, u: usize, v: usize) -> f64;

    /// Number of vertices the distances are defined over (used for
    /// dimension checks at API boundaries).
    fn num_vertices(&self) -> usize;
}

impl PairDistances for SymmetricMatrix {
    #[inline]
    fn pair(&self, u: usize, v: usize) -> f64 {
        self.get(u, v)
    }

    #[inline]
    fn num_vertices(&self) -> usize {
        self.n()
    }
}

/// [`dijkstra_into`] that stops as soon as every flagged target has been
/// settled (popped with a final distance). Returns the number of vertices
/// settled before the stop — the honest work measure for the restricted
/// APSP counters. Distances of unsettled vertices are a valid lower bound
/// but are only *final* for settled ones; callers must read targets only.
fn dijkstra_targets_into(
    graph: &WeightedGraph,
    source: usize,
    is_target: &[bool],
    targets_total: usize,
    dist: &mut [f64],
) -> usize {
    let n = graph.num_vertices();
    debug_assert_eq!(dist.len(), n);
    debug_assert_eq!(is_target.len(), n);
    dist.fill(f64::INFINITY);
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);
    let mut settled = 0usize;
    let mut targets_left = targets_total;
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        settled += 1;
        if is_target[u] {
            targets_left -= 1;
            if targets_left == 0 {
                break;
            }
        }
        for &(v, w) in graph.neighbors(u) {
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let candidate = d + w;
            if candidate < dist[v] {
                dist[v] = candidate;
                heap.push(HeapEntry {
                    dist: candidate,
                    vertex: v,
                });
            }
        }
    }
    settled
}

/// Full shortest-path rows for a chosen set of source vertices: the
/// demand-driven replacement for the `|sources| ≪ n` slice of the APSP
/// matrix (the DBHT needs full rows only for converging-bubble vertices).
///
/// Rows are computed by one [`dijkstra`] per source, in parallel, and
/// entries between two sources are averaged (exactly like
/// [`all_pairs_shortest_paths`] symmetrises) so [`SourceRows::pair`] is
/// symmetric wherever both directions were computed. For a source/non-
/// source pair only the source-anchored direction exists; it is returned
/// as-is, which can differ from the dense matrix in the last floating-
/// point bits (same path, opposite accumulation order).
#[derive(Debug, Clone)]
pub struct SourceRows {
    n: usize,
    /// Sorted, deduplicated source vertices.
    sources: Vec<usize>,
    /// `row_of[v]` is the index into `rows` for source `v`, `usize::MAX`
    /// otherwise.
    row_of: Vec<usize>,
    /// `sources.len() × n` row-major distances.
    rows: Vec<f64>,
}

impl SourceRows {
    /// Runs one Dijkstra per (deduplicated) source, in parallel.
    pub fn compute(graph: &WeightedGraph, sources: &[usize]) -> Self {
        let n = graph.num_vertices();
        let mut sources: Vec<usize> = sources.to_vec();
        sources.sort_unstable();
        sources.dedup();
        let mut row_of = vec![usize::MAX; n];
        for (i, &s) in sources.iter().enumerate() {
            assert!(s < n, "source {s} out of range");
            row_of[s] = i;
        }
        let mut rows = vec![0.0f64; sources.len() * n];
        {
            let sources = &sources;
            rows.par_chunks_mut(n)
                .with_max_len(1)
                .enumerate()
                .for_each(|(i, row)| dijkstra_into(graph, sources[i], row));
        }
        // Symmetrise the source×source entries the way the dense APSP
        // does, so downstream comparisons between restricted and full
        // distances agree bitwise on those pairs. Writer owns the smaller
        // source index; entries are disjoint.
        let mut out = Self {
            n,
            sources,
            row_of,
            rows,
        };
        let m = out.sources.len();
        for a in 0..m {
            for b in (a + 1)..m {
                let (u, v) = (out.sources[a], out.sources[b]);
                let forward = out.rows[a * n + v];
                let backward = out.rows[b * n + u];
                let avg = 0.5 * (forward + backward);
                out.rows[a * n + v] = avg;
                out.rows[b * n + u] = avg;
            }
        }
        out
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The sorted source set.
    pub fn sources(&self) -> &[usize] {
        &self.sources
    }

    /// Whether `v` has a computed row.
    #[inline]
    pub fn is_source(&self, v: usize) -> bool {
        self.row_of[v] != usize::MAX
    }

    /// The full distance row of source `s`.
    ///
    /// # Panics
    /// Panics if `s` is not a source.
    pub fn row(&self, s: usize) -> &[f64] {
        let i = self.row_of[s];
        assert!(i != usize::MAX, "vertex {s} is not a computed source");
        &self.rows[i * self.n..(i + 1) * self.n]
    }

    /// Distance entries computed (`|sources| · n`).
    pub fn pairs_computed(&self) -> usize {
        self.rows.len()
    }
}

impl PairDistances for SourceRows {
    fn pair(&self, u: usize, v: usize) -> f64 {
        if u == v {
            return 0.0;
        }
        // Prefer the smaller-id source's row; for source pairs both rows
        // hold the same averaged value anyway.
        let (a, b) = (u.min(v), u.max(v));
        if self.is_source(a) {
            self.row(a)[b]
        } else if self.is_source(b) {
            self.row(b)[a]
        } else {
            panic!("distance ({u}, {v}) is outside the computed source rows")
        }
    }

    #[inline]
    fn num_vertices(&self) -> usize {
        SourceRows::num_vertices(self)
    }
}

/// Dense intra-group distance blocks: for each group (disjoint vertex
/// set), the full pairwise shortest-path distances *through the whole
/// graph* between its members, computed by one early-terminating Dijkstra
/// per member (the run stops once the entire group is settled). Paths may
/// leave the group; only the *output* is restricted.
///
/// Each block is symmetrised exactly like [`all_pairs_shortest_paths`]
/// (both directions averaged), so block entries are bitwise equal to the
/// dense matrix's entries for the same pairs.
#[derive(Debug, Clone)]
pub struct GroupBlocks {
    /// Sorted member list per group.
    groups: Vec<Vec<usize>>,
    /// `group_of[v]` = group index containing `v`, `usize::MAX` if none.
    group_of: Vec<usize>,
    /// `local_of[v]` = index of `v` inside its group's member list.
    local_of: Vec<usize>,
    /// One `|G|²` row-major block per group.
    blocks: Vec<Vec<f64>>,
    /// Total vertices settled across all Dijkstra runs (work measure).
    settled: usize,
}

impl GroupBlocks {
    /// Computes the blocks for the given disjoint groups.
    ///
    /// # Panics
    /// Panics if a vertex appears in two groups or is out of range.
    pub fn compute(graph: &WeightedGraph, groups: &[Vec<usize>]) -> Self {
        let n = graph.num_vertices();
        let mut sorted_groups: Vec<Vec<usize>> = groups.to_vec();
        for g in &mut sorted_groups {
            g.sort_unstable();
            g.dedup();
        }
        let mut group_of = vec![usize::MAX; n];
        let mut local_of = vec![usize::MAX; n];
        for (gi, g) in sorted_groups.iter().enumerate() {
            for (li, &v) in g.iter().enumerate() {
                assert!(v < n, "group vertex {v} out of range");
                assert!(group_of[v] == usize::MAX, "vertex {v} in two groups");
                group_of[v] = gi;
                local_of[v] = li;
            }
        }
        let mut settled_total = 0usize;
        let mut blocks = Vec::with_capacity(sorted_groups.len());
        for g in &sorted_groups {
            let m = g.len();
            let mut is_target = vec![false; n];
            for &v in g {
                is_target[v] = true;
            }
            let mut block = vec![0.0f64; m * m];
            let is_target = &is_target;
            // One stealable task per member row; per-row settled counts
            // come back with the rows and are reduced in member order, so
            // the counter is identical at every thread count.
            let settled_rows: Vec<usize> = {
                let g_ref = g;
                block
                    .par_chunks_mut(m.max(1))
                    .with_max_len(1)
                    .enumerate()
                    .map(|(li, row)| {
                        let mut dist = vec![f64::INFINITY; n];
                        let settled =
                            dijkstra_targets_into(graph, g_ref[li], is_target, m, &mut dist);
                        for (lj, &t) in g_ref.iter().enumerate() {
                            row[lj] = dist[t];
                        }
                        settled
                    })
                    .collect()
            };
            settled_total += settled_rows.iter().sum::<usize>();
            // Symmetrise within the block (average both directions, the
            // dense-APSP rule).
            for a in 0..m {
                for b in (a + 1)..m {
                    let avg = 0.5 * (block[a * m + b] + block[b * m + a]);
                    block[a * m + b] = avg;
                    block[b * m + a] = avg;
                }
            }
            blocks.push(block);
        }
        Self {
            groups: sorted_groups,
            group_of,
            local_of,
            blocks,
            settled: settled_total,
        }
    }

    /// The group index containing `v`, if any.
    #[inline]
    pub fn group_of(&self, v: usize) -> Option<usize> {
        let g = self.group_of[v];
        (g != usize::MAX).then_some(g)
    }

    /// Whether `u` and `v` lie in the same group (and thus have a block
    /// entry).
    #[inline]
    pub fn same_group(&self, u: usize, v: usize) -> bool {
        self.group_of[u] != usize::MAX && self.group_of[u] == self.group_of[v]
    }

    /// Sorted member list of group `g`.
    pub fn group(&self, g: usize) -> &[usize] {
        &self.groups[g]
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Distance entries stored across all blocks (`Σ |G|²`).
    pub fn pairs_computed(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Total vertices settled across all early-terminating Dijkstra runs:
    /// the work actually done, for the `vs n²` counters.
    pub fn vertices_settled(&self) -> usize {
        self.settled
    }
}

impl PairDistances for GroupBlocks {
    fn pair(&self, u: usize, v: usize) -> f64 {
        let g = self.group_of[u];
        assert!(
            g != usize::MAX && g == self.group_of[v],
            "distance ({u}, {v}) crosses group boundaries — not in any block"
        );
        self.blocks[g][self.local_of[u] * self.groups[g].len() + self.local_of[v]]
    }

    #[inline]
    fn num_vertices(&self) -> usize {
        self.group_of.len()
    }
}

/// [`SourceRows`] for `sources`, plus [`GroupBlocks`] for `groups`, in one
/// call — the demand-driven restricted APSP used by the DBHT back half.
pub fn group_restricted_shortest_paths(
    graph: &WeightedGraph,
    groups: &[Vec<usize>],
) -> GroupBlocks {
    GroupBlocks::compute(graph, groups)
}

/// Demand-driven full rows from the given sources (see [`SourceRows`]).
pub fn shortest_path_rows(graph: &WeightedGraph, sources: &[usize]) -> SourceRows {
    SourceRows::compute(graph, sources)
}

/// All-pairs shortest paths: runs [`dijkstra`] from every vertex in
/// parallel, writing each source's distances straight into the matching
/// row of one flat `n²` buffer, then symmetrises that buffer in place (in
/// parallel) and hands it to the matrix without copying.
pub fn all_pairs_shortest_paths(graph: &WeightedGraph) -> SymmetricMatrix {
    let n = graph.num_vertices();
    let mut data = vec![0.0f64; n * n];
    if n > 0 {
        // Each source row is a safe `par_chunks_mut` chunk, but the
        // row-per-source ownership claim is part of the workspace's
        // audited disjoint-write inventory, so it registers like the raw-
        // pointer paths (checked under `--cfg pfg_racecheck`, free
        // otherwise).
        let audit = DisjointWriteAudit::ranges("apsp rows");
        let audit = &audit;
        // `with_max_len(1)`: each item is a whole Dijkstra run, so
        // declare it heavy — without the hint the executor's cheap-item
        // heuristic would run sub-512-vertex graphs entirely inline.
        data.par_chunks_mut(n)
            .with_max_len(1)
            .enumerate()
            .for_each(|(source, row)| {
                let _claim = audit.claim_range(source * n, (source + 1) * n);
                dijkstra_into(graph, source, row);
            });
        // The graph is undirected so the matrix is symmetric up to
        // floating point associativity; symmetrise explicitly to make
        // downstream consumers (complete linkage) independent of
        // traversal order.
        symmetrize_in_place(&mut data, n);
    }
    SymmetricMatrix::from_symmetrized(n, data)
}

/// Averages `data[i][j]` and `data[j][i]` into both entries, in parallel.
///
/// Each task owns row index `i` and writes the pair `(i, j)`/`(j, i)` for
/// every `j > i`: element `(r, c)` is written only by the task for
/// `min(r, c)`, so all writes are disjoint even though they cross row
/// boundaries — which is why this goes through a raw pointer rather than
/// `par_chunks_mut` (no safe row partition covers a transpose-pair write
/// pattern). Upper rows carry more pairs than lower ones; the executor's
/// stealing balances that skew.
fn symmetrize_in_place(data: &mut [f64], n: usize) {
    debug_assert_eq!(data.len(), n * n);
    let mat = SendPtr::new(data.as_mut_ptr());
    // Off-diagonal cells are each written exactly once (owner = min
    // index); the registry pins that claim under `--cfg pfg_racecheck`.
    let audit = DisjointWriteAudit::cells("apsp symmetrize", n * n);
    let audit = &audit;
    // Row `i` carries `n - i - 1` pairs, so the work is heavily skewed;
    // small leaves (and stealing) keep the early heavy rows from gating
    // the round, and the hint keeps small `n` parallel at all.
    (0..n).into_par_iter().with_max_len(16).for_each(|i| {
        for j in (i + 1)..n {
            audit.write_once(i * n + j);
            audit.write_once(j * n + i);
            // SAFETY: `(i, j)` with `i < j` is visited by exactly this
            // task (owner = min index), the borrow of `data` outlives the
            // parallel round, and both indices are < n².
            unsafe {
                let upper = mat.get().add(i * n + j);
                let lower = mat.get().add(j * n + i);
                let v = 0.5 * (*upper + *lower);
                *upper = v;
                *lower = v;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_square() -> WeightedGraph {
        // 0 -1- 1
        // |     |
        // 4     1
        // |     |
        // 3 -1- 2
        WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 4.0)])
    }

    #[test]
    fn dijkstra_prefers_longer_hop_path_with_smaller_weight() {
        let g = weighted_square();
        let d = dijkstra(&g, 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[3], 3.0); // via 1,2 not the direct weight-4 edge
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        let d = dijkstra(&g, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn apsp_matches_per_source_dijkstra() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        for s in 0..4 {
            let d = dijkstra(&g, s);
            for (t, &dt) in d.iter().enumerate() {
                assert!((apsp.get(s, t) - dt).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn apsp_is_symmetric_with_zero_diagonal() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        for i in 0..4 {
            assert_eq!(apsp.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(apsp.get(i, j), apsp.get(j, i));
            }
        }
    }

    #[test]
    fn apsp_satisfies_triangle_inequality() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    assert!(apsp.get(i, j) <= apsp.get(i, k) + apsp.get(k, j) + 1e-12);
                }
            }
        }
    }

    /// A path graph with uneven weights: 0 -1- 1 -2- 2 -1- 3 -5- 4.
    fn weighted_path() -> WeightedGraph {
        WeightedGraph::from_edges(5, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 4, 5.0)])
    }

    #[test]
    fn source_rows_match_full_apsp_on_source_pairs_bitwise() {
        let g = weighted_path();
        let apsp = all_pairs_shortest_paths(&g);
        let rows = shortest_path_rows(&g, &[3, 0, 3]);
        assert_eq!(rows.sources(), &[0, 3]);
        assert_eq!(rows.pairs_computed(), 2 * 5);
        // Source pairs are averaged exactly like the dense APSP → bitwise.
        assert_eq!(rows.pair(0, 3).to_bits(), apsp.get(0, 3).to_bits());
        // Source × non-source pairs are one-directional but still the same
        // shortest-path value.
        for v in 0..5 {
            assert!((rows.pair(0, v) - apsp.get(0, v)).abs() < 1e-12);
            assert!((rows.pair(v, 3) - apsp.get(v, 3)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "outside the computed source rows")]
    fn source_rows_panic_on_uncomputed_pair() {
        let g = weighted_path();
        let rows = shortest_path_rows(&g, &[0]);
        rows.pair(1, 2);
    }

    #[test]
    fn group_blocks_match_full_apsp_bitwise() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        let blocks = group_restricted_shortest_paths(&g, &[vec![0, 3], vec![1, 2]]);
        for (u, v) in [(0, 3), (3, 0), (1, 2), (2, 1), (0, 0), (2, 2)] {
            assert_eq!(blocks.pair(u, v).to_bits(), apsp.get(u, v).to_bits());
        }
        assert_eq!(blocks.pairs_computed(), 4 + 4);
        assert!(blocks.vertices_settled() > 0);
    }

    #[test]
    fn group_block_paths_may_leave_the_group() {
        // Group {0, 3}: the weight-4 direct edge loses to the 0-1-2-3 path
        // through the *other* group, so the block must route outside.
        let g = weighted_square();
        let blocks = group_restricted_shortest_paths(&g, &[vec![0, 3]]);
        assert!((blocks.pair(0, 3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn early_termination_settles_fewer_vertices_than_full_runs() {
        // Long path, tight group at the front: the group Dijkstras stop
        // well before the far end of the path.
        let n = 64;
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let g = WeightedGraph::from_edges(n, &edges);
        let blocks = group_restricted_shortest_paths(&g, &[vec![0, 1, 2, 3]]);
        // Each of the 4 runs stops within distance 3 of its source, so it
        // settles at most 7 path vertices — nowhere near the full 64.
        assert!(blocks.vertices_settled() <= 4 * 7);
        assert!((blocks.pair(0, 3) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "crosses group boundaries")]
    fn group_blocks_panic_on_cross_group_pair() {
        let g = weighted_square();
        let blocks = group_restricted_shortest_paths(&g, &[vec![0, 3], vec![1, 2]]);
        blocks.pair(0, 1);
    }

    #[test]
    fn pair_distances_trait_agrees_across_backends() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        let rows = shortest_path_rows(&g, &[0, 1, 2, 3]);
        // With every vertex a source, SourceRows covers all pairs and the
        // averaging rule matches the dense matrix exactly.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    PairDistances::pair(&apsp, i, j).to_bits(),
                    rows.pair(i, j).to_bits()
                );
            }
        }
    }
}
