//! Dijkstra single-source shortest paths and parallel all-pairs shortest
//! paths over the sparse filtered graphs.
//!
//! APSP over the dissimilarity-weighted TMFG is the dominant cost of the
//! DBHT (§VI): the paper runs Dijkstra from every source in parallel, which
//! is exactly what [`all_pairs_shortest_paths`] does — every source's
//! distance row is written *directly into the result matrix's own row*
//! (`par_chunks_mut` hands each task a disjoint row), and the matrix is
//! then symmetrised in place, also in parallel. Peak memory is one `n²`
//! buffer plus per-source Dijkstra scratch; the previous implementation
//! materialised per-source row `Vec`s, copied them into an `n²` flat
//! buffer, and symmetrised into a third `n²` allocation (~3n² peak), which
//! was the memory high-water mark of the whole DBHT pipeline. Row tasks
//! are uneven on irregular graphs; the executor's work stealing keeps one
//! expensive source from gating the round.

use crate::matrix::SymmetricMatrix;
use crate::weighted_graph::WeightedGraph;
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry: (distance, vertex).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) pops the smallest
        // distance. total_cmp keeps this a strict total order even if a
        // NaN weight ever slips in (partial_cmp would report Equal for
        // NaN-vs-anything, breaking transitivity).
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest-path distances from `source` using edge weights as
/// (non-negative) lengths. Unreachable vertices get `f64::INFINITY`.
///
/// # Panics
/// Debug-asserts that edge weights are non-negative.
pub fn dijkstra(graph: &WeightedGraph, source: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; graph.num_vertices()];
    dijkstra_into(graph, source, &mut dist);
    dist
}

/// [`dijkstra`] writing into a caller-provided row of length
/// `num_vertices` (every entry is overwritten), so all-pairs callers can
/// fill one flat matrix without a per-source allocation.
fn dijkstra_into(graph: &WeightedGraph, source: usize, dist: &mut [f64]) {
    let n = graph.num_vertices();
    debug_assert_eq!(dist.len(), n);
    dist.fill(f64::INFINITY);
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for &(v, w) in graph.neighbors(u) {
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let candidate = d + w;
            if candidate < dist[v] {
                dist[v] = candidate;
                heap.push(HeapEntry {
                    dist: candidate,
                    vertex: v,
                });
            }
        }
    }
}

/// All-pairs shortest paths: runs [`dijkstra`] from every vertex in
/// parallel, writing each source's distances straight into the matching
/// row of one flat `n²` buffer, then symmetrises that buffer in place (in
/// parallel) and hands it to the matrix without copying.
pub fn all_pairs_shortest_paths(graph: &WeightedGraph) -> SymmetricMatrix {
    let n = graph.num_vertices();
    let mut data = vec![0.0f64; n * n];
    if n > 0 {
        // `with_max_len(1)`: each item is a whole Dijkstra run, so
        // declare it heavy — without the hint the executor's cheap-item
        // heuristic would run sub-512-vertex graphs entirely inline.
        data.par_chunks_mut(n)
            .with_max_len(1)
            .enumerate()
            .for_each(|(source, row)| dijkstra_into(graph, source, row));
        // The graph is undirected so the matrix is symmetric up to
        // floating point associativity; symmetrise explicitly to make
        // downstream consumers (complete linkage) independent of
        // traversal order.
        symmetrize_in_place(&mut data, n);
    }
    SymmetricMatrix::from_symmetrized(n, data)
}

/// Averages `data[i][j]` and `data[j][i]` into both entries, in parallel.
///
/// Each task owns row index `i` and writes the pair `(i, j)`/`(j, i)` for
/// every `j > i`: element `(r, c)` is written only by the task for
/// `min(r, c)`, so all writes are disjoint even though they cross row
/// boundaries — which is why this goes through a raw pointer rather than
/// `par_chunks_mut` (no safe row partition covers a transpose-pair write
/// pattern). Upper rows carry more pairs than lower ones; the executor's
/// stealing balances that skew.
fn symmetrize_in_place(data: &mut [f64], n: usize) {
    debug_assert_eq!(data.len(), n * n);
    struct MatPtr(*mut f64);
    // SAFETY: tasks write disjoint element sets (see above) and the
    // borrow of `data` outlives the parallel round.
    unsafe impl Send for MatPtr {}
    unsafe impl Sync for MatPtr {}
    let mat = MatPtr(data.as_mut_ptr());
    let mat = &mat;
    // Row `i` carries `n - i - 1` pairs, so the work is heavily skewed;
    // small leaves (and stealing) keep the early heavy rows from gating
    // the round, and the hint keeps small `n` parallel at all.
    (0..n).into_par_iter().with_max_len(16).for_each(|i| {
        for j in (i + 1)..n {
            // SAFETY: `(i, j)` with `i < j` is visited by exactly this
            // task (owner = min index), and both indices are < n².
            unsafe {
                let upper = mat.0.add(i * n + j);
                let lower = mat.0.add(j * n + i);
                let v = 0.5 * (*upper + *lower);
                *upper = v;
                *lower = v;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_square() -> WeightedGraph {
        // 0 -1- 1
        // |     |
        // 4     1
        // |     |
        // 3 -1- 2
        WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 4.0)])
    }

    #[test]
    fn dijkstra_prefers_longer_hop_path_with_smaller_weight() {
        let g = weighted_square();
        let d = dijkstra(&g, 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[3], 3.0); // via 1,2 not the direct weight-4 edge
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        let d = dijkstra(&g, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn apsp_matches_per_source_dijkstra() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        for s in 0..4 {
            let d = dijkstra(&g, s);
            for (t, &dt) in d.iter().enumerate() {
                assert!((apsp.get(s, t) - dt).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn apsp_is_symmetric_with_zero_diagonal() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        for i in 0..4 {
            assert_eq!(apsp.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(apsp.get(i, j), apsp.get(j, i));
            }
        }
    }

    #[test]
    fn apsp_satisfies_triangle_inequality() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    assert!(apsp.get(i, j) <= apsp.get(i, k) + apsp.get(k, j) + 1e-12);
                }
            }
        }
    }
}
