//! Dijkstra single-source shortest paths and parallel all-pairs shortest
//! paths over the sparse filtered graphs.
//!
//! APSP over the dissimilarity-weighted TMFG is the dominant cost of the
//! DBHT (§VI): the paper runs Dijkstra from every source in parallel, which
//! is exactly what [`all_pairs_shortest_paths`] does (one rayon task per
//! source over a binary-heap Dijkstra). Per-source tasks are dealt to the
//! shim's persistent worker pool, so the per-round dispatch cost stays
//! negligible even when the per-source work is small (sparse graphs,
//! small `n`).

use crate::matrix::SymmetricMatrix;
use crate::weighted_graph::WeightedGraph;
use rayon::prelude::*;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry: (distance, vertex).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) pops the smallest
        // distance. total_cmp keeps this a strict total order even if a
        // NaN weight ever slips in (partial_cmp would report Equal for
        // NaN-vs-anything, breaking transitivity).
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra shortest-path distances from `source` using edge weights as
/// (non-negative) lengths. Unreachable vertices get `f64::INFINITY`.
///
/// # Panics
/// Debug-asserts that edge weights are non-negative.
pub fn dijkstra(graph: &WeightedGraph, source: usize) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapEntry { dist: d, vertex: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for &(v, w) in graph.neighbors(u) {
            debug_assert!(w >= 0.0, "Dijkstra requires non-negative weights");
            let candidate = d + w;
            if candidate < dist[v] {
                dist[v] = candidate;
                heap.push(HeapEntry {
                    dist: candidate,
                    vertex: v,
                });
            }
        }
    }
    dist
}

/// All-pairs shortest paths: runs [`dijkstra`] from every vertex in
/// parallel and returns the resulting symmetric distance matrix.
pub fn all_pairs_shortest_paths(graph: &WeightedGraph) -> SymmetricMatrix {
    let n = graph.num_vertices();
    let rows: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|source| dijkstra(graph, source))
        .collect();
    let mut flat = Vec::with_capacity(n * n);
    for row in &rows {
        flat.extend_from_slice(row);
    }
    // The graph is undirected so the matrix is symmetric up to floating
    // point associativity; symmetrise explicitly to make downstream
    // consumers (complete linkage) independent of traversal order.
    let mut m = SymmetricMatrix::zeros(n);
    for i in 0..n {
        for j in i..n {
            let v = 0.5 * (flat[i * n + j] + flat[j * n + i]);
            m.set(i, j, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted_square() -> WeightedGraph {
        // 0 -1- 1
        // |     |
        // 4     1
        // |     |
        // 3 -1- 2
        WeightedGraph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 4.0)])
    }

    #[test]
    fn dijkstra_prefers_longer_hop_path_with_smaller_weight() {
        let g = weighted_square();
        let d = dijkstra(&g, 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[3], 3.0); // via 1,2 not the direct weight-4 edge
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        let d = dijkstra(&g, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn apsp_matches_per_source_dijkstra() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        for s in 0..4 {
            let d = dijkstra(&g, s);
            for (t, &dt) in d.iter().enumerate() {
                assert!((apsp.get(s, t) - dt).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn apsp_is_symmetric_with_zero_diagonal() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        for i in 0..4 {
            assert_eq!(apsp.get(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(apsp.get(i, j), apsp.get(j, i));
            }
        }
    }

    #[test]
    fn apsp_satisfies_triangle_inequality() {
        let g = weighted_square();
        let apsp = all_pairs_shortest_paths(&g);
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    assert!(apsp.get(i, j) <= apsp.get(i, k) + apsp.get(k, j) + 1e-12);
                }
            }
        }
    }
}
