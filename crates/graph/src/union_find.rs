//! Disjoint-set (union–find) with path compression and union by rank.
//!
//! Used by the dendrogram-cutting utilities and by graph-connectivity
//! checks in tests.

/// A classic union–find structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x` with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets containing `a` and `b`. Returns `true` if they were
    /// previously in different sets.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Returns, for every element, a label in `0..num_sets` such that two
    /// elements share a label iff they are in the same set. Labels are
    /// assigned in order of first appearance.
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut label_of_root = vec![usize::MAX; n];
        let mut labels = vec![0; n];
        let mut next = 0;
        for (x, label) in labels.iter_mut().enumerate() {
            let r = self.find(x);
            if label_of_root[r] == usize::MAX {
                label_of_root[r] = next;
                next += 1;
            }
            *label = label_of_root[r];
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(0, 3));
    }

    #[test]
    fn labels_are_consistent() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let labels = uf.labels();
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[0], labels[4]);
        assert_eq!(labels[1], labels[5]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[3], labels[0]);
        assert_ne!(labels[3], labels[1]);
        // Labels are compact: exactly num_sets distinct values.
        let mut distinct: Vec<usize> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), uf.num_sets());
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
