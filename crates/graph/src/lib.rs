//! Graph substrate for the parallel filtered-graph clustering pipeline.
//!
//! The paper's algorithms consume a complete weighted graph given as an
//! `n × n` similarity matrix ([`SymmetricMatrix`]) and produce sparse planar
//! graphs ([`WeightedGraph`]) on which the DBHT algorithm runs breadth-first
//! searches, Dijkstra single-source shortest paths, and all-pairs shortest
//! paths. The PMFG additionally needs a planarity test: the scratch-reusing
//! left–right core ([`planarity::LrScratch`]) tests a borrowed graph plus
//! one speculative edge without cloning, mutating, or allocating, which is
//! what the round-based parallel PMFG hammers in its batch phase.
//!
//! Everything here is implemented from scratch on top of the standard
//! library plus rayon for parallel loops.

pub mod bfs;
pub mod matrix;
pub mod planarity;
pub mod shortest_paths;
pub mod similarity;
pub mod union_find;
pub mod weighted_graph;

pub use bfs::{bfs_distances, bfs_reachable, bfs_reachable_within};
pub use matrix::{SymmetricMatrix, SymmetricMatrixF32};
pub use planarity::{is_planar, stays_planar_with_edge, LrScratch};
pub use shortest_paths::{
    all_pairs_shortest_paths, dijkstra, group_restricted_shortest_paths, shortest_path_rows,
    GroupBlocks, PairDistances, SourceRows,
};
pub use similarity::{emission_cmp, DissimilarityView, SimilaritySource, TopKCandidates};
pub use union_find::UnionFind;
pub use weighted_graph::WeightedGraph;
