//! Graph substrate for the parallel filtered-graph clustering pipeline.
//!
//! The paper's algorithms consume a complete weighted graph given as an
//! `n × n` similarity matrix ([`SymmetricMatrix`]) and produce sparse planar
//! graphs ([`WeightedGraph`]) on which the DBHT algorithm runs breadth-first
//! searches, Dijkstra single-source shortest paths, and all-pairs shortest
//! paths. The PMFG baseline additionally needs a planarity test
//! ([`planarity::is_planar`]).
//!
//! Everything here is implemented from scratch on top of the standard
//! library plus rayon for parallel loops.

pub mod bfs;
pub mod matrix;
pub mod planarity;
pub mod shortest_paths;
pub mod union_find;
pub mod weighted_graph;

pub use bfs::{bfs_distances, bfs_reachable, bfs_reachable_within};
pub use matrix::SymmetricMatrix;
pub use planarity::is_planar;
pub use shortest_paths::{all_pairs_shortest_paths, dijkstra};
pub use union_find::UnionFind;
pub use weighted_graph::WeightedGraph;
